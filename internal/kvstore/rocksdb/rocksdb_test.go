package rocksdb

import (
	"fmt"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.LLCBytes = 1 << 20
	cfg.MemtableBytes = 64 << 10 // small memtable so flushes happen in tests
	cfg.BlockCacheBytes = 256 << 10
	cfg.LevelBaseBytes = 256 << 10
	cfg.MaxTableBytes = 128 << 10
	return cfg
}

func TestBloomNoFalseNegatives(t *testing.T) {
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%05d", i)
	}
	b := newBloom(keys, 10)
	for _, k := range keys {
		if !b.mayContain(k) {
			t.Fatalf("false negative for %s", k)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%06d", i)
	}
	b := newBloom(keys, 10)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.mayContain(fmt.Sprintf("absent%06d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high for 10 bits/key", rate)
	}
}

func TestSSTableGetSeek(t *testing.T) {
	entries := []entry{
		{key: "a", value: []byte("1")},
		{key: "c", value: []byte("3")},
		{key: "e", value: []byte("5")},
	}
	st := buildSSTable(1, 0, entries, 4096, 10)
	if e, _, ok := st.get("c"); !ok || string(e.value) != "3" {
		t.Fatalf("get c: %+v %v", e, ok)
	}
	if _, _, ok := st.get("b"); ok {
		t.Fatal("absent key found")
	}
	if i := st.seek("b"); i != 1 {
		t.Fatalf("seek b = %d", i)
	}
	if !st.overlaps("b", "d") || st.overlaps("f", "z") {
		t.Fatal("overlaps wrong")
	}
	if st.minKey != "a" || st.maxKey != "e" {
		t.Fatal("key range wrong")
	}
}

func TestSSTableBlockAssignment(t *testing.T) {
	var entries []entry
	for i := 0; i < 100; i++ {
		entries = append(entries, entry{key: fmt.Sprintf("k%03d", i), value: make([]byte, 100)})
	}
	st := buildSSTable(1, 0, entries, 1024, 10)
	if st.numBlocks < 10 {
		t.Fatalf("numBlocks = %d, want ~12 for 100x~120B entries in 1KB blocks", st.numBlocks)
	}
	prev := int32(0)
	for _, b := range st.blockOf {
		if b < prev || b > prev+1 {
			t.Fatal("block assignment not contiguous")
		}
		prev = b
	}
}

func TestMergePrecedence(t *testing.T) {
	newer := []entry{{key: "a", value: []byte("new")}, {key: "b", del: true}}
	older := []entry{{key: "a", value: []byte("old")}, {key: "b", value: []byte("x")}, {key: "c", value: []byte("3")}}
	got := mergeEntries([][]entry{newer, older}, true)
	if len(got) != 3 {
		t.Fatalf("merged = %+v", got)
	}
	if string(got[0].value) != "new" {
		t.Fatal("newer value did not win")
	}
	if !got[1].del {
		t.Fatal("tombstone dropped with keepTombstones=true")
	}
	// Bottommost merge drops tombstones.
	got = mergeEntries([][]entry{newer, older}, false)
	if len(got) != 2 || got[0].key != "a" || got[1].key != "c" {
		t.Fatalf("bottommost merge = %+v", got)
	}
}

func TestStoreReadYourWrites(t *testing.T) {
	s := New(testConfig())
	if s.Read("k").Found {
		t.Fatal("empty store hit")
	}
	s.Insert("k", []byte("v1"))
	if r := s.Read("k"); !r.Found || string(r.Value) != "v1" {
		t.Fatalf("read back: %+v", r)
	}
	s.Update("k", []byte("v2"))
	if r := s.Read("k"); string(r.Value) != "v2" {
		t.Fatalf("after update: %q", r.Value)
	}
	if s.Name() != "rocksdb" {
		t.Fatal("name")
	}
}

func TestFlushAndReadThroughSSTables(t *testing.T) {
	s := New(testConfig())
	val := make([]byte, 1000)
	const n = 500 // ~500KB: multiple memtable flushes
	for i := 0; i < n; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), val)
	}
	if s.Flushes() == 0 {
		t.Fatal("no flushes despite exceeding memtable size")
	}
	// Every key must be readable, wherever it now lives.
	for i := 0; i < n; i += 7 {
		if !s.Read(fmt.Sprintf("key%05d", i)).Found {
			t.Fatalf("key %d lost after flush", i)
		}
	}
	if tasks := s.DrainBackground(); len(tasks) == 0 {
		t.Fatal("flushes queued no background work")
	} else {
		for _, task := range tasks {
			if task.Cost.IsZero() && task.SSDWrites == 0 {
				t.Fatalf("empty background task: %+v", task)
			}
		}
	}
	if tasks := s.DrainBackground(); tasks != nil {
		t.Fatal("DrainBackground not clearing")
	}
}

func TestCompactionKeepsDataAndShrinksL0(t *testing.T) {
	s := New(testConfig())
	val := make([]byte, 1000)
	const n = 3000
	for i := 0; i < n; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), val)
	}
	if s.Compactions() == 0 {
		t.Fatal("no compactions despite many flushes")
	}
	counts := s.LevelTableCounts()
	if counts[0] >= s.cfg.L0CompactionTrigger+1 {
		t.Fatalf("L0 not being compacted: %v", counts)
	}
	deeper := 0
	for _, c := range counts[1:] {
		deeper += c
	}
	if deeper == 0 {
		t.Fatalf("no tables below L0: %v", counts)
	}
	for i := 0; i < n; i += 13 {
		r := s.Read(fmt.Sprintf("key%05d", i))
		if !r.Found || len(r.Value) != 1000 {
			t.Fatalf("key %d lost in compaction", i)
		}
	}
}

func TestUpdatesSupersedeAcrossCompaction(t *testing.T) {
	s := New(testConfig())
	// First generation of values.
	for i := 0; i < 1000; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), []byte(fmt.Sprintf("gen1-%d", i)))
	}
	// Overwrite everything; compactions must keep the newest.
	for i := 0; i < 1000; i++ {
		s.Update(fmt.Sprintf("key%05d", i), []byte(fmt.Sprintf("gen2-%d", i)))
	}
	for i := 0; i < 1000; i += 11 {
		r := s.Read(fmt.Sprintf("key%05d", i))
		want := fmt.Sprintf("gen2-%d", i)
		if !r.Found || string(r.Value) != want {
			t.Fatalf("key %d = %q, want %q", i, r.Value, want)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := New(testConfig())
	for i := 0; i < 1000; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), make([]byte, 500))
	}
	s.Delete("key00010")
	if s.Read("key00010").Found {
		t.Fatal("deleted key readable from memtable")
	}
	// Push the tombstone through flushes and compactions.
	for i := 1000; i < 3000; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), make([]byte, 500))
	}
	if s.Read("key00010").Found {
		t.Fatal("deleted key resurrected by compaction")
	}
	if !s.Read("key00011").Found {
		t.Fatal("neighbour key lost")
	}
}

func TestScanOrderedAndMerged(t *testing.T) {
	s := New(testConfig())
	for i := 0; i < 2000; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), []byte{byte(i)})
	}
	// Overwrite a key so the scan must take the newest version.
	s.Update("key00500", []byte{99})
	r := s.Scan("key00498", 10)
	if !r.Found || r.ScanCount != 10 {
		t.Fatalf("scan: %+v", r)
	}
	// Deleted keys must not appear.
	s.Delete("key00499")
	r = s.Scan("key00498", 3)
	if r.ScanCount != 3 {
		t.Fatalf("scan after delete: %+v", r)
	}
}

func TestColdReadRequiresSSD(t *testing.T) {
	cfg := testConfig()
	cfg.BlockCacheBytes = 8 << 10 // tiny cache: nearly everything misses
	s := New(cfg)
	val := make([]byte, 1000)
	for i := 0; i < 2000; i++ {
		s.Insert(fmt.Sprintf("key%05d", i), val)
	}
	ssd := 0
	for i := 0; i < 100; i++ {
		ssd += s.Read(fmt.Sprintf("key%05d", i*17)).SSDReads
	}
	if ssd == 0 {
		t.Fatal("no SSD reads with a tiny block cache")
	}
	// Large cache: repeated reads of the same key stay in memory.
	s2 := New(testConfig())
	for i := 0; i < 2000; i++ {
		s2.Insert(fmt.Sprintf("key%05d", i), val)
	}
	s2.Read("key00100")
	if got := s2.Read("key00100").SSDReads; got != 0 {
		t.Fatalf("warm read did %d SSD reads", got)
	}
}

func TestWritesAreAsync(t *testing.T) {
	s := New(testConfig())
	r := s.Insert("k", make([]byte, 1000))
	if r.SSDReads != 0 {
		t.Fatal("insert should not block on the device")
	}
}

func TestPropertyMirrorsMap(t *testing.T) {
	type op struct {
		Key    uint8
		Kind   uint8 // 0 read, 1 write, 2 delete
		ValSeq uint8
	}
	cfg := testConfig()
	cfg.MemtableBytes = 2 << 10 // flush constantly to stress the LSM
	err := quick.Check(func(ops []op) bool {
		s := New(cfg)
		ref := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key)
			switch o.Kind % 3 {
			case 1:
				v := fmt.Sprintf("v%d", o.ValSeq)
				s.Update(k, []byte(v))
				ref[k] = v
			case 2:
				s.Delete(k)
				delete(ref, k)
			default:
				r := s.Read(k)
				want, ok := ref[k]
				if r.Found != ok {
					return false
				}
				if ok && string(r.Value) != want {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLenCountsLiveKeys(t *testing.T) {
	s := New(testConfig())
	for i := 0; i < 300; i++ {
		s.Insert(fmt.Sprintf("k%03d", i), make([]byte, 500))
	}
	s.Delete("k000")
	s.Delete("k001")
	if got := s.Len(); got != 298 {
		t.Fatalf("Len = %d, want 298", got)
	}
}
