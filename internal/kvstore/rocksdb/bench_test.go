package rocksdb

import (
	"fmt"
	"testing"
)

func benchStore(n int) *Store {
	s := New(DefaultConfig())
	for i := 0; i < n; i++ {
		s.Insert(fmt.Sprintf("user%09d", i), make([]byte, 1024))
	}
	return s
}

func BenchmarkRead(b *testing.B) {
	s := benchStore(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(fmt.Sprintf("user%09d", i%100_000))
	}
}

func BenchmarkWriteWithCompaction(b *testing.B) {
	s := benchStore(0)
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(fmt.Sprintf("user%09d", i), val)
		s.DrainBackground()
	}
}

func BenchmarkScan100(b *testing.B) {
	s := benchStore(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(fmt.Sprintf("user%09d", i%90_000), 100)
	}
}

func BenchmarkBloomProbe(b *testing.B) {
	keys := make([]string, 100_000)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%09d", i)
	}
	f := newBloom(keys, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.mayContain(keys[i%len(keys)])
	}
}
