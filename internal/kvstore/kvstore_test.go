package kvstore

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"github.com/holmes-colocation/holmes/internal/workload"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(300)
	if c.Touch("a", 100) {
		t.Fatal("first touch should miss")
	}
	if !c.Touch("a", 100) {
		t.Fatal("second touch should hit")
	}
	c.Touch("b", 100)
	c.Touch("c", 100)
	if c.Used() != 300 || c.Len() != 3 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	// Inserting d evicts the LRU entry (a was most recently... a,b,c ->
	// a is oldest after its last touch? a touched twice then b, c:
	// recency order c,b,a; inserting d evicts a).
	c.Touch("d", 100)
	if c.Contains("a") {
		t.Fatal("a should have been evicted")
	}
	if !c.Contains("d") || !c.Contains("b") || !c.Contains("c") {
		t.Fatal("wrong eviction victim")
	}
	h, m, e := c.Stats()
	if h != 1 || m != 4 || e != 1 {
		t.Fatalf("stats = %d/%d/%d", h, m, e)
	}
}

func TestLRURecencyUpdates(t *testing.T) {
	c := NewLRU(200)
	c.Touch("a", 100)
	c.Touch("b", 100)
	c.Touch("a", 100) // refresh a
	c.Touch("c", 100) // evicts b, not a
	if !c.Contains("a") || c.Contains("b") {
		t.Fatal("recency not updated by Touch")
	}
}

func TestLRUResize(t *testing.T) {
	c := NewLRU(200)
	c.Touch("a", 100)
	c.Touch("b", 50)
	c.Touch("a", 180) // grows a, evicting b
	if c.Contains("b") {
		t.Fatal("resize did not evict")
	}
	if c.Used() != 180 {
		t.Fatalf("used = %d", c.Used())
	}
}

func TestLRUOversizedEntry(t *testing.T) {
	c := NewLRU(100)
	c.Touch("huge", 1000)
	if c.Contains("huge") || c.Used() != 0 {
		t.Fatal("oversized entry must not be cached")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	c.Touch("a", 1)
	if c.Contains("a") {
		t.Fatal("zero-capacity cache cached something")
	}
}

func TestLRUOnEvict(t *testing.T) {
	c := NewLRU(100)
	var evicted []string
	c.OnEvict = func(key string, size int64) { evicted = append(evicted, key) }
	c.Touch("a", 60)
	c.Touch("b", 60)
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("OnEvict = %v", evicted)
	}
	// Explicit Remove does not call OnEvict (invalidation semantics).
	c.Remove("b")
	if len(evicted) != 1 {
		t.Fatal("Remove triggered OnEvict")
	}
	if c.Used() != 0 {
		t.Fatalf("used after remove = %d", c.Used())
	}
}

func TestLRUUsedNeverExceedsCapacity(t *testing.T) {
	err := quick.Check(func(ops []struct {
		Key  uint8
		Size uint16
	}) bool {
		c := NewLRU(4096)
		for _, op := range ops {
			c.Touch(fmt.Sprintf("k%d", op.Key), int64(op.Size))
			if c.Used() > 4096 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestResidencyLevels(t *testing.T) {
	r := NewResidency(1 << 20)
	// Cold access: DRAM.
	c := r.TouchRecord("k1", 1024, false)
	if c.Acc[workload.DRAM].Loads == 0 || c.Acc[workload.L3].Loads != 0 {
		t.Fatalf("cold access cost: %+v", c)
	}
	// Warm access: L3.
	c = r.TouchRecord("k1", 1024, false)
	if c.Acc[workload.L3].Loads == 0 || c.Acc[workload.DRAM].Loads != 0 {
		t.Fatalf("warm access cost: %+v", c)
	}
	// Writes produce stores.
	c = r.TouchRecord("k1", 1024, true)
	if c.Acc[workload.L3].Stores == 0 {
		t.Fatalf("write cost: %+v", c)
	}
	if r.HitRate() <= 0 {
		t.Fatal("hit rate not tracked")
	}
	r.Invalidate("k1")
	c = r.TouchRecord("k1", 1024, false)
	if c.Acc[workload.DRAM].Loads == 0 {
		t.Fatal("invalidation ignored")
	}
}

func TestResidencyEvictionUnderPressure(t *testing.T) {
	r := NewResidency(10 * 1024)
	for i := 0; i < 100; i++ {
		r.TouchRecord(fmt.Sprintf("k%d", i), 1024, false)
	}
	// Working set is 10x the LLC: early keys must be cold again.
	c := r.TouchRecord("k0", 1024, false)
	if c.Acc[workload.DRAM].Loads == 0 {
		t.Fatal("k0 should have been evicted from the LLC model")
	}
}

func TestSkiplistSetGetDelete(t *testing.T) {
	s := NewSkiplist(1)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty get should miss")
	}
	if !s.Set("a", []byte("1")) {
		t.Fatal("first set should be new")
	}
	if s.Set("a", []byte("2")) {
		t.Fatal("overwrite should not be new")
	}
	v, ok := s.Get("a")
	if !ok || string(v) != "2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("delete semantics wrong")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestSkiplistOrderedIteration(t *testing.T) {
	s := NewSkiplist(7)
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		s.Set(k, []byte(k))
	}
	var got []string
	s.All(func(k string, v []byte) { got = append(got, k) })
	if !sort.StringsAreSorted(got) || len(got) != 5 {
		t.Fatalf("All order = %v", got)
	}
	if s.Min() != "a" {
		t.Fatalf("Min = %q", s.Min())
	}
}

func TestSkiplistSeek(t *testing.T) {
	s := NewSkiplist(3)
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%03d", i), nil)
	}
	var visited []string
	n := s.Seek("k050", 10, func(k string, v []byte) bool {
		visited = append(visited, k)
		return true
	})
	if n != 10 || visited[0] != "k050" || visited[9] != "k059" {
		t.Fatalf("Seek visited %v (n=%d)", visited, n)
	}
	// Early stop.
	count := 0
	s.Seek("k000", 50, func(k string, v []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
	// Seek past the end.
	if n := s.Seek("z", 5, func(string, []byte) bool { return true }); n != 0 {
		t.Fatalf("Seek past end visited %d", n)
	}
}

func TestSkiplistLargeOrdered(t *testing.T) {
	s := NewSkiplist(11)
	const n = 10000
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i * 7919) % n // pseudo-random insertion order
	}
	for _, i := range perm {
		s.Set(fmt.Sprintf("key%06d", i), []byte{byte(i)})
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	prev := ""
	count := 0
	s.All(func(k string, v []byte) {
		if k <= prev {
			t.Fatalf("order violated at %q after %q", k, prev)
		}
		prev = k
		count++
	})
	if count != n {
		t.Fatalf("iterated %d", count)
	}
	// Search steps should be O(log n), far below n.
	s.Get("key005000")
	if steps := s.LastSearchSteps(); steps > 200 {
		t.Fatalf("search steps = %d, skiplist degenerated", steps)
	}
}

func TestSkiplistDeterminism(t *testing.T) {
	build := func() *Skiplist {
		s := NewSkiplist(42)
		for i := 0; i < 1000; i++ {
			s.Set(fmt.Sprintf("k%04d", i), nil)
		}
		return s
	}
	a, b := build(), build()
	a.Get("k0500")
	b.Get("k0500")
	if a.LastSearchSteps() != b.LastSearchSteps() {
		t.Fatal("skiplist structure not deterministic")
	}
}

func TestResultItemsNoSSD(t *testing.T) {
	r := Result{Found: true, Cost: workload.Compute(100)}
	fired := false
	items := r.Items(func(int64) { fired = true })
	if len(items) != 1 {
		t.Fatalf("items = %d", len(items))
	}
	items[0].OnComplete(0)
	if !fired {
		t.Fatal("OnComplete not attached")
	}
}

func TestResultItemsWithSSD(t *testing.T) {
	r := Result{Found: true, Cost: workload.Compute(100), SSDReads: 2}
	items := r.Items(nil)
	if len(items) != 4 {
		t.Fatalf("items = %d, want pre + 2 sleeps + post", len(items))
	}
	if items[1].SleepNs != SSDReadLatencyNs || items[2].SleepNs != SSDReadLatencyNs {
		t.Fatal("sleep latencies wrong")
	}
	for _, it := range items {
		if err := it.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBackgroundTaskItems(t *testing.T) {
	b := BackgroundTask{Cost: workload.Compute(10), SSDReads: 1, SSDWrites: 3}
	items := b.Items()
	if len(items) != 5 {
		t.Fatalf("items = %d", len(items))
	}
	if items[1].SleepNs != SSDReadLatencyNs || items[4].SleepNs != SSDWriteLatencyNs {
		t.Fatal("device latencies wrong")
	}
}
