package kvstore

import (
	"container/list"

	"github.com/holmes-colocation/holmes/internal/workload"
)

// LRU is a byte-capacity LRU used in two roles:
//
//   - as a CPU-cache residency model (capacity = last-level cache size):
//     whether the lines of a record are still in L3 decides if touching it
//     costs L3 or DRAM accesses;
//   - as an application cache (RocksDB block cache, WiredTiger page cache):
//     whether a block is resident decides if a read needs the device.
//
// It is deterministic and not safe for concurrent use; the simulation is
// single-threaded.
type LRU struct {
	capacity int64
	used     int64
	order    *list.List               // front = most recent
	entries  map[string]*list.Element // key -> element holding *lruEntry
	hits     int64
	misses   int64
	evicted  int64
	// OnEvict, if set, observes evictions (used by WiredTiger to write
	// back dirty pages).
	OnEvict func(key string, size int64)
}

type lruEntry struct {
	key  string
	size int64
}

// NewLRU creates an LRU with the given byte capacity. A non-positive
// capacity yields a cache that never holds anything.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
	}
}

// Touch records an access to key with the given size and reports whether
// it was resident. Missing keys are inserted (which may evict).
func (c *LRU) Touch(key string, size int64) (hit bool) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		c.order.MoveToFront(el) // refresh before any eviction scan
		if e.size != size {
			c.used += size - e.size
			e.size = size
			c.evictIfNeeded()
		}
		c.hits++
		return true
	}
	c.misses++
	c.insert(key, size)
	return false
}

// Contains reports residency without updating recency or stats.
func (c *LRU) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Remove evicts key explicitly (invalidation), without OnEvict.
func (c *LRU) Remove(key string) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		c.used -= e.size
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *LRU) insert(key string, size int64) {
	if c.capacity <= 0 || size > c.capacity {
		return // uncacheable
	}
	el := c.order.PushFront(&lruEntry{key: key, size: size})
	c.entries[key] = el
	c.used += size
	c.evictIfNeeded()
}

func (c *LRU) evictIfNeeded() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
		c.evicted++
		if c.OnEvict != nil {
			c.OnEvict(e.key, e.size)
		}
	}
}

// Used returns the bytes currently cached.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *LRU) Len() int { return len(c.entries) }

// Stats returns (hits, misses, evictions).
func (c *LRU) Stats() (hits, misses, evicted int64) {
	return c.hits, c.misses, c.evicted
}

// Residency is the CPU-cache residency model shared by the stores: a
// last-level-cache-sized LRU over record keys. Touching a resident record
// costs L3 accesses; a non-resident one costs DRAM accesses. Hot metadata
// (hashtable heads, skiplist towers, inner B-tree pages) is charged at L2.
type Residency struct {
	llc *LRU
}

// DefaultLLCBytes approximates the evaluation server's shared L3 slice
// available to a service (32 MB package L3, shared with co-runners).
const DefaultLLCBytes = 24 << 20

// NewResidency creates a residency model with the given LLC capacity.
func NewResidency(llcBytes int64) *Residency {
	return &Residency{llc: NewLRU(llcBytes)}
}

// TouchRecord charges an access of size bytes to the record identified by
// key, returning the access cost at the appropriate hierarchy level.
func (r *Residency) TouchRecord(key string, size int64, write bool) workload.Cost {
	if r.llc.Touch(key, size) {
		return touchCost(workload.L3, size, write)
	}
	return touchCost(workload.DRAM, size, write)
}

// Invalidate removes a record from the residency model (e.g. on delete).
func (r *Residency) Invalidate(key string) { r.llc.Remove(key) }

// HitRate returns the residency hit fraction so far (0 when untouched).
func (r *Residency) HitRate() float64 {
	h, m, _ := r.llc.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
