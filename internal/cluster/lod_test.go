package cluster

import (
	"testing"

	"github.com/holmes-colocation/holmes/internal/faults"
)

// lodSpec is testSpec widened so the fleet has genuinely quiescent nodes
// for the level-of-detail policy to fast-forward.
func lodSpec() Spec {
	s := testSpec()
	s.Nodes = 10
	s.LoD = LoDAuto
	return s
}

func TestLoDSkipsQuiescentNodes(t *testing.T) {
	res, err := Run(lodSpec(), RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoDSkips == 0 {
		t.Fatal("LoD auto fast-forwarded no node-rounds on a mostly idle fleet")
	}
	if res.LoDSkips >= res.Rounds*res.Spec.Nodes {
		t.Fatalf("LoD skipped %d of %d node-rounds — the occupied nodes must simulate",
			res.LoDSkips, res.Rounds*res.Spec.Nodes)
	}
	// The interesting nodes still did their jobs at full fidelity.
	for _, s := range res.Services {
		if s.Queries == 0 {
			t.Errorf("service %s measured no queries under LoD auto", s.Name)
		}
	}
	if res.BatchCompleted == 0 {
		t.Error("no batch pods completed under LoD auto")
	}
	if res.BatchArrived != res.BatchDoneTotal+res.BatchRunning+res.BatchQueued+res.BatchFailed {
		t.Errorf("pod accounting not conserved: %d arrived != %d done + %d running + %d queued + %d failed",
			res.BatchArrived, res.BatchDoneTotal, res.BatchRunning, res.BatchQueued, res.BatchFailed)
	}
}

func TestLoDDeterministicAcrossWorkers(t *testing.T) {
	spec := lodSpec()
	r1, err := Run(spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(spec, RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Fatalf("LoD output differs between Workers 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			r1.Render(), r8.Render())
	}
	if r1.LoDSkips != r8.LoDSkips {
		t.Fatalf("LoD skip counts differ: %d serial vs %d parallel", r1.LoDSkips, r8.LoDSkips)
	}
}

// TestLoDFullRescanBaselineAgrees pins that the naive baseline (full
// rescan, full fidelity) and the default spec (no LoD) compute the same
// run: FullRescan changes cost, never results.
func TestLoDFullRescanBaselineAgrees(t *testing.T) {
	spec := testSpec()
	fast, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(spec, RunOptions{Workers: 4, FullRescan: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Render() != naive.Render() {
		t.Fatalf("FullRescan changed results:\n--- sharded ---\n%s\n--- naive ---\n%s",
			fast.Render(), naive.Render())
	}
}

// TestLoDDisabledUnderNodeChaos pins the contract: a node-fault schedule
// (crashes, partitions) forces full fidelity even under LoD auto, because
// its per-round semantics assume every machine advances in lockstep.
func TestLoDDisabledUnderNodeChaos(t *testing.T) {
	spec := lodSpec()
	sched := faults.DefaultSchedule()
	spec.Chaos = &sched
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoDSkips != 0 {
		t.Fatalf("LoD fast-forwarded %d node-rounds under a node-fault schedule", res.LoDSkips)
	}
}
