package cluster

import "fmt"

// NodeState is the control plane's registry entry for one node: the
// latest heartbeat plus the reconciler's hot-streak counter. Placers see
// only this — never the node itself — so a placement decision is a pure
// function of the registry, which is what makes one decision benchmarkable
// and the whole control plane deterministic.
type NodeState struct {
	ID int
	HB Heartbeat
	// TrendVPI is the round-scale EWMA of the node's heartbeat SmoothedVPI
	// — the control plane's view of sustained interference.
	TrendVPI float64
	// Hot counts consecutive heartbeats with TrendVPI >= the eviction
	// threshold (reset to zero by the first quiet heartbeat).
	Hot int
	// MissedHB counts consecutive rounds without a delivered heartbeat.
	MissedHB int
	// Suspect is the failure detector's soft verdict: the node has missed
	// enough heartbeats that placement avoids it when anything else fits.
	Suspect bool
	// Dead is the hard verdict: the node's pods have been rescheduled and
	// no placement may target it until it rejoins. Always false when
	// degradation is disabled — the control plane then schedules blind.
	Dead bool
}

// PodRequest is one placement decision's input.
type PodRequest struct {
	Name string
	// Guaranteed requests hold a service; BestEffort requests batch work.
	Guaranteed bool
	// Threads is the pod's declared thread count (capacity accounting).
	Threads int
}

// Placer chooses a node for a pod from the registry snapshot, returning
// the node ID or -1 when nothing fits. Implementations must be
// deterministic: equal inputs, equal choice.
type Placer interface {
	Name() string
	Place(states []NodeState, req PodRequest) int
}

// NewPlacer returns the named policy.
func NewPlacer(name string) (Placer, error) {
	switch name {
	case PlacerVPI:
		return VPIAware{}, nil
	case PlacerBinPack:
		return BinPack{}, nil
	case PlacerScore:
		return ScoringPlacer{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown placer %q", name)
}

// registryPlacer is the sharded fast path: a placer that can answer the
// same decision from the Registry's per-shard bounds and candidate orders
// instead of rescanning the fleet. Implementations must return exactly
// what their Place would on Registry.States() — the differential tests
// pin this across chaos schedules and shard sizes.
type registryPlacer interface {
	PlaceReg(g *Registry, req PodRequest) int
}

// fits is the shared capacity rule: a pod fits while the node's declared
// threads stay within its logical-CPU count. Threads time-share beyond
// that, but admitting past it just builds runqueues. Nodes the failure
// detector declared dead never fit.
func fits(st NodeState, req PodRequest) bool {
	return !st.Dead && st.HB.UsedThreads()+req.Threads <= st.HB.CapacityThreads
}

// BinPack is the baseline: first-fit by node ID on thread capacity,
// blind to interference. It concentrates both services and batch pods on
// the lowest-numbered nodes — exactly what a count-based scheduler does.
type BinPack struct{}

// Name implements Placer.
func (BinPack) Name() string { return PlacerBinPack }

// Place implements Placer.
func (BinPack) Place(states []NodeState, req PodRequest) int {
	for _, st := range states {
		if fits(st, req) {
			return st.ID
		}
	}
	return -1
}

// PlaceReg implements registryPlacer: first fit by node ID, skipping
// whole shards whose max free capacity cannot hold the request.
func (BinPack) PlaceReg(g *Registry, req PodRequest) int {
	for si := range g.shards {
		sh := &g.shards[si]
		sh.ensureAgg(g.states)
		if sh.maxFree < req.Threads {
			continue
		}
		for i := sh.lo; i < sh.hi; i++ {
			if fits(g.states[i], req) {
				return i
			}
		}
	}
	return -1
}

// VPIAware is the interference-aware policy. Guaranteed pods spread away
// from interference: lowest smoothed VPI first, then fewest service
// threads, then lowest ID. BestEffort pods backfill lendable capacity:
// most free threads plus granted LC siblings first, skipping nodes the
// reconciler currently considers hot — placing batch where the fleet's
// VPI says SMT cycles are actually available.
type VPIAware struct{}

// Name implements Placer.
func (VPIAware) Name() string { return PlacerVPI }

// vpiKey is VPIAware's ranking key for one candidate (minimized
// lexicographically), plus whether the node sits in the avoid tier.
func vpiKey(st NodeState, guaranteed bool) (a, b float64, avoid bool) {
	// Suspect nodes (missed heartbeats, maybe dying) and hot nodes
	// (the reconciler is draining them) only take new work when
	// nothing healthy fits — placing beats dropping.
	avoid = st.Suspect
	if guaranteed {
		// Minimize sustained interference, then co-resident service
		// load, so services land on distinct quiet nodes.
		a = st.HB.SmoothedVPI
		b = float64(st.HB.ServiceThreads)
	} else {
		// Maximize lendable capacity: free threads plus granted
		// siblings (negated — we minimize throughout).
		free := st.HB.CapacityThreads - st.HB.UsedThreads()
		a = -float64(free + 2*st.HB.Lendable)
		b = st.HB.SmoothedVPI
		avoid = avoid || st.Hot > 0
	}
	return a, b, avoid
}

// vpiBetter reports whether candidate (a, b, id) beats the incumbent.
// The lowest-ID rule is explicit in the key, not an artifact of scan
// order, so shard-merged selection agrees with the full rescan even when
// candidates arrive out of ID order.
func vpiBetter(a, b float64, id int, bestA, bestB float64, bestID int) bool {
	if bestID < 0 {
		return true
	}
	if a != bestA {
		return a < bestA
	}
	if b != bestB {
		return b < bestB
	}
	return id < bestID
}

// Place implements Placer.
func (VPIAware) Place(states []NodeState, req PodRequest) int {
	best, bestAvoid := -1, -1
	var bestA, bestB, avoidA, avoidB float64
	for _, st := range states {
		if !fits(st, req) {
			continue
		}
		a, b, avoid := vpiKey(st, req.Guaranteed)
		if avoid {
			if vpiBetter(a, b, st.ID, avoidA, avoidB, bestAvoid) {
				bestAvoid, avoidA, avoidB = st.ID, a, b
			}
			continue
		}
		if vpiBetter(a, b, st.ID, bestA, bestB, best) {
			best, bestA, bestB = st.ID, a, b
		}
	}
	if best < 0 {
		return bestAvoid
	}
	return best
}

// PlaceReg implements registryPlacer: the same tiered selection, skipping
// whole shards whose max free capacity cannot hold the request.
func (VPIAware) PlaceReg(g *Registry, req PodRequest) int {
	best, bestAvoid := -1, -1
	var bestA, bestB, avoidA, avoidB float64
	for si := range g.shards {
		sh := &g.shards[si]
		sh.ensureAgg(g.states)
		if sh.maxFree < req.Threads {
			continue
		}
		for i := sh.lo; i < sh.hi; i++ {
			st := g.states[i]
			if !fits(st, req) {
				continue
			}
			a, b, avoid := vpiKey(st, req.Guaranteed)
			if avoid {
				if vpiBetter(a, b, st.ID, avoidA, avoidB, bestAvoid) {
					bestAvoid, avoidA, avoidB = st.ID, a, b
				}
				continue
			}
			if vpiBetter(a, b, st.ID, bestA, bestB, best) {
				best, bestA, bestB = st.ID, a, b
			}
		}
	}
	if best < 0 {
		return bestAvoid
	}
	return best
}
