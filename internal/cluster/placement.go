package cluster

import "fmt"

// NodeState is the control plane's registry entry for one node: the
// latest heartbeat plus the reconciler's hot-streak counter. Placers see
// only this — never the node itself — so a placement decision is a pure
// function of the registry, which is what makes one decision benchmarkable
// and the whole control plane deterministic.
type NodeState struct {
	ID int
	HB Heartbeat
	// TrendVPI is the round-scale EWMA of the node's heartbeat SmoothedVPI
	// — the control plane's view of sustained interference.
	TrendVPI float64
	// Hot counts consecutive heartbeats with TrendVPI >= the eviction
	// threshold (reset to zero by the first quiet heartbeat).
	Hot int
	// MissedHB counts consecutive rounds without a delivered heartbeat.
	MissedHB int
	// Suspect is the failure detector's soft verdict: the node has missed
	// enough heartbeats that placement avoids it when anything else fits.
	Suspect bool
	// Dead is the hard verdict: the node's pods have been rescheduled and
	// no placement may target it until it rejoins. Always false when
	// degradation is disabled — the control plane then schedules blind.
	Dead bool
}

// PodRequest is one placement decision's input.
type PodRequest struct {
	Name string
	// Guaranteed requests hold a service; BestEffort requests batch work.
	Guaranteed bool
	// Threads is the pod's declared thread count (capacity accounting).
	Threads int
}

// Placer chooses a node for a pod from the registry snapshot, returning
// the node ID or -1 when nothing fits. Implementations must be
// deterministic: equal inputs, equal choice.
type Placer interface {
	Name() string
	Place(states []NodeState, req PodRequest) int
}

// NewPlacer returns the named policy.
func NewPlacer(name string) (Placer, error) {
	switch name {
	case PlacerVPI:
		return VPIAware{}, nil
	case PlacerBinPack:
		return BinPack{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown placer %q", name)
}

// fits is the shared capacity rule: a pod fits while the node's declared
// threads stay within its logical-CPU count. Threads time-share beyond
// that, but admitting past it just builds runqueues. Nodes the failure
// detector declared dead never fit.
func fits(st NodeState, req PodRequest) bool {
	return !st.Dead && st.HB.UsedThreads()+req.Threads <= st.HB.CapacityThreads
}

// BinPack is the baseline: first-fit by node ID on thread capacity,
// blind to interference. It concentrates both services and batch pods on
// the lowest-numbered nodes — exactly what a count-based scheduler does.
type BinPack struct{}

// Name implements Placer.
func (BinPack) Name() string { return PlacerBinPack }

// Place implements Placer.
func (BinPack) Place(states []NodeState, req PodRequest) int {
	for _, st := range states {
		if fits(st, req) {
			return st.ID
		}
	}
	return -1
}

// VPIAware is the interference-aware policy. Guaranteed pods spread away
// from interference: lowest smoothed VPI first, then fewest service
// threads, then lowest ID. BestEffort pods backfill lendable capacity:
// most free threads plus granted LC siblings first, skipping nodes the
// reconciler currently considers hot — placing batch where the fleet's
// VPI says SMT cycles are actually available.
type VPIAware struct{}

// Name implements Placer.
func (VPIAware) Name() string { return PlacerVPI }

// Place implements Placer.
func (VPIAware) Place(states []NodeState, req PodRequest) int {
	best, bestAvoid := -1, -1
	var bestA, bestB, avoidA, avoidB float64
	for _, st := range states {
		if !fits(st, req) {
			continue
		}
		var a, b float64
		// Suspect nodes (missed heartbeats, maybe dying) and hot nodes
		// (the reconciler is draining them) only take new work when
		// nothing healthy fits — placing beats dropping.
		avoid := st.Suspect
		if req.Guaranteed {
			// Minimize sustained interference, then co-resident service
			// load, so services land on distinct quiet nodes.
			a = st.HB.SmoothedVPI
			b = float64(st.HB.ServiceThreads)
		} else {
			// Maximize lendable capacity: free threads plus granted
			// siblings (negated — we minimize throughout).
			free := st.HB.CapacityThreads - st.HB.UsedThreads()
			a = -float64(free + 2*st.HB.Lendable)
			b = st.HB.SmoothedVPI
			avoid = avoid || st.Hot > 0
		}
		if avoid {
			if bestAvoid < 0 || a < avoidA || (a == avoidA && b < avoidB) {
				bestAvoid, avoidA, avoidB = st.ID, a, b
			}
			continue
		}
		if best < 0 || a < bestA || (a == bestA && b < bestB) {
			best, bestA, bestB = st.ID, a, b
		}
	}
	if best < 0 {
		return bestAvoid
	}
	return best
}
