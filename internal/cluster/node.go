package cluster

import (
	"fmt"

	"github.com/holmes-colocation/holmes/internal/batch"
	"github.com/holmes-colocation/holmes/internal/cgroupfs"
	"github.com/holmes-colocation/holmes/internal/core"
	"github.com/holmes-colocation/holmes/internal/faults"
	"github.com/holmes-colocation/holmes/internal/kernel"
	"github.com/holmes-colocation/holmes/internal/kubelite"
	"github.com/holmes-colocation/holmes/internal/kvstore"
	"github.com/holmes-colocation/holmes/internal/kvstore/memcached"
	"github.com/holmes-colocation/holmes/internal/kvstore/redis"
	"github.com/holmes-colocation/holmes/internal/kvstore/rocksdb"
	"github.com/holmes-colocation/holmes/internal/kvstore/wiredtiger"
	"github.com/holmes-colocation/holmes/internal/lcservice"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/rng"
	"github.com/holmes-colocation/holmes/internal/scenario"
	"github.com/holmes-colocation/holmes/internal/telemetry"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

// Heartbeat is one node's periodic telemetry snapshot: what the kubelite
// agent reports to the control plane each round, and everything the
// placement scheduler and reconciler are allowed to know about the node.
type Heartbeat struct {
	Node   int
	TimeNs int64
	// CPUVPI is the instantaneous VPI per logical CPU.
	CPUVPI []float64
	// SmoothedVPI is the mean EWMA VPI across the reserved (LC) CPUs —
	// the sustained interference level the reconciler keys on.
	SmoothedVPI float64
	// LCUtil is the mean smoothed busy fraction of the reserved CPUs.
	LCUtil float64
	// Reserved is the current reserved-pool size (grows under expansion).
	Reserved int
	// Lendable counts reserved CPUs whose hyperthread sibling is
	// currently granted to batch — the node's spare SMT capacity.
	Lendable int
	// BatchPods/BatchThreads are the node's BestEffort occupancy.
	BatchPods    int
	BatchThreads int
	// ServicePods/ServiceThreads are the Guaranteed occupancy.
	ServicePods    int
	ServiceThreads int
	// CapacityThreads is the node's thread capacity (logical CPUs).
	CapacityThreads int
	// Queries and SLOBad are cumulative service-query SLI counters: total
	// completed queries and how many exceeded the latency SLO, summed over
	// the node's services. The control plane differences consecutive
	// heartbeats to feed the fleet burn-rate engine.
	Queries int64
	SLOBad  int64
	// P99Ns is the mean p99 latency across the node's services (0 when
	// the node hosts none or nothing was measured yet).
	P99Ns float64
	// SafeMode reports the node daemon's watchdog state: true while the
	// daemon distrusts its counters and holds the static partition.
	SafeMode bool
	// Gen is the node's boot generation (0 = first boot); it bumps on
	// every reboot so the control plane can tell a fresh incarnation
	// from the one it placed pods on.
	Gen int
	// Progress checkpoints every BestEffort pod's completed work units.
	// If the node dies before the next heartbeat, this is all the control
	// plane has to reschedule from.
	Progress []PodProgress
}

// PodProgress is one BestEffort pod's work-unit checkpoint, carried in
// each heartbeat so a dead node's pods can resume elsewhere from the
// last reported state instead of from zero.
type PodProgress struct {
	Name  string
	Units int
}

// UsedThreads is the node's total declared thread occupancy.
func (h Heartbeat) UsedThreads() int { return h.BatchThreads + h.ServiceThreads }

// nodeService is one placed Guaranteed service pod.
type nodeService struct {
	spec   ServiceSpec
	svc    *lcservice.Service
	client *lcservice.Client
	store  kvstore.Store
}

// Node is one cluster member: a full machine + kernel + cgroupfs + Holmes
// daemon + kubelite agent. Between control-plane rounds a node simulates
// independently, which is what lets the cluster advance all nodes on the
// runner pool without any cross-node ordering.
type Node struct {
	ID int

	m  *machine.Machine
	k  *kernel.Kernel
	fs *cgroupfs.FS
	kl *kubelite.Kubelet

	seed     uint64
	gen      int
	sloNs    float64
	services map[string]*nodeService

	// Measurement baselines, captured when the measured window opens.
	busyBase      float64
	completedPods int
}

// bootNode builds one node. Its machine seed derives from (cluster seed,
// node ID) via rng.DeriveSeed, so the fleet is reproducible at any boot
// or advance parallelism. gen > 0 is a reboot: the seed is additionally
// salted with the generation, so a rebooted node is a genuinely fresh
// machine, not a replay of its first life — while gen 0 keeps the exact
// seed key of fault-free runs.
func bootNode(spec Spec, id, gen int, tel *telemetry.Set, spans *telemetry.SpanRecorder) (*Node, error) {
	mcfg := machine.DefaultConfig()
	mcfg.Topology.Cores = spec.CoresPerNode
	mcfg.Topology.Sockets = 1
	seedKey := []string{"cluster-node", fmt.Sprint(id)}
	if gen > 0 {
		seedKey = append(seedKey, "reboot", fmt.Sprint(gen))
	}
	mcfg.Seed = rng.DeriveSeed(spec.Seed, seedKey...)
	m := machine.New(mcfg)
	k := kernel.New(m)
	fs := cgroupfs.NewFS()
	if tel != nil {
		k.SetTelemetry(tel)
		fs.SetTelemetry(tel)
	}

	kcfg := kubelite.DefaultConfig()
	kcfg.Holmes = core.DefaultConfig()
	kcfg.Holmes.ReservedCPUs = spec.reservedCPUs()
	kcfg.Holmes.SNs = 500_000_000 // compressed quiet period, as in the evaluation
	kcfg.Holmes.DaemonCPU = mcfg.Topology.LogicalCPUs() - 1
	kcfg.Holmes.Telemetry = tel
	// Span recording is pure observation: the daemon's modeled span cost
	// depends only on Telemetry being set, so attaching a recorder here
	// cannot perturb the simulation (the tracing on/off byte-identity the
	// cluster tests pin).
	kcfg.Holmes.Spans = spans
	kcfg.Holmes.SpanNode = id
	if !spec.DisableDegradation {
		// Counter-health watchdog + periodic cgroupfs re-scan: the node
		// defends itself against lying counters and lost events.
		kcfg.Holmes.WatchdogWindow = 128
		kcfg.Holmes.RescanIntervalNs = spec.heartbeatNs()
	}
	if c := spec.Chaos; c != nil {
		if cs := c.Counters; cs.Enabled() {
			kcfg.Holmes.CounterFault = faults.NewCounterInjector(
				cs.Resolve(spec.totalSimNs()),
				rng.DeriveSeed(spec.Seed, "chaos-counters", fmt.Sprint(id), fmt.Sprint(gen)))
		}
		if cg := c.Cgroup; cg.Enabled() {
			kcfg.Holmes.CgroupFault = faults.NewCgroupInjector(cg,
				rng.DeriveSeed(spec.Seed, "chaos-cgroup", fmt.Sprint(id), fmt.Sprint(gen)))
		}
	}
	kl, err := kubelite.Start(k, fs, kcfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return &Node{
		ID:       id,
		m:        m,
		k:        k,
		fs:       fs,
		kl:       kl,
		seed:     spec.Seed,
		gen:      gen,
		sloNs:    spec.sloNs(),
		services: map[string]*nodeService{},
	}, nil
}

// Advance runs the node's simulation for one heartbeat period. Nothing
// outside the node is touched, so Advance calls on different nodes are
// safe to run concurrently.
func (n *Node) Advance(durNs int64) { n.m.RunFor(durNs) }

// Occupied reports whether the node currently hosts any pod — service,
// replica or batch. The level-of-detail policy never fast-forwards an
// occupied node: hosted work must simulate at full fidelity.
func (n *Node) Occupied() bool { return len(n.services) > 0 || n.kl.Pods() > 0 }

// Heartbeat snapshots the node's telemetry for the control plane.
func (n *Node) Heartbeat() Heartbeat {
	d := n.kl.Holmes()
	mon := d.Monitor()
	topo := n.m.Topology()
	hb := Heartbeat{
		Node:            n.ID,
		TimeNs:          n.m.Now(),
		CPUVPI:          make([]float64, topo.LogicalCPUs()),
		CapacityThreads: topo.LogicalCPUs(),
		ServicePods:     len(n.services),
		SafeMode:        d.SafeMode(),
		Gen:             n.gen,
	}
	for p := 0; p < topo.LogicalCPUs(); p++ {
		hb.CPUVPI[p] = mon.VPI(p)
	}
	reserved := d.ReservedCPUs().CPUs()
	hb.Reserved = len(reserved)
	for _, p := range reserved {
		hb.SmoothedVPI += mon.SmoothedVPI(p)
		hb.LCUtil += mon.SmoothedUsage(p)
		if d.SiblingAllowed(p) {
			hb.Lendable++
		}
	}
	if len(reserved) > 0 {
		hb.SmoothedVPI /= float64(len(reserved))
		hb.LCUtil /= float64(len(reserved))
	}
	for _, s := range n.services {
		hb.ServiceThreads += len(s.svc.Process().Threads())
		lat := s.svc.Latencies()
		hb.Queries += lat.Count()
		hb.SLOBad += lat.CountAbove(n.sloNs)
		hb.P99Ns += lat.Percentile(99)
	}
	if len(n.services) > 0 {
		hb.P99Ns /= float64(len(n.services))
	}
	for _, name := range n.kl.PodNames() {
		pod := n.kl.Pod(name)
		if pod.Spec.QoS != kubelite.BestEffort {
			continue
		}
		hb.BatchPods++
		hb.BatchThreads += pod.Spec.Containers * pod.Spec.ThreadsPerContainer
		hb.Progress = append(hb.Progress, PodProgress{Name: name, Units: pod.CompletedWorkUnits()})
	}
	return hb
}

// PlaceService launches a Guaranteed service pod on this node: the store
// is built and preloaded, the service process spawned and registered with
// the node's Holmes daemon through the kubelite agent, and its open-loop
// client started. Seeds derive from (cluster seed, service name) only, so
// a service behaves identically wherever it lands.
func (n *Node) PlaceService(ss ServiceSpec) error {
	if _, dup := n.services[ss.Name]; dup {
		return fmt.Errorf("cluster: node %d already runs service %s", n.ID, ss.Name)
	}
	store, err := newStore(ss.Store, rng.DeriveSeed(n.seed, "svc-store", ss.Name))
	if err != nil {
		return err
	}
	svc := lcservice.Launch(n.k, store, lcservice.DefaultConfigFor(ss.Store))
	wl, err := ycsb.ByName(defaultStr(ss.Workload, "a"))
	if err != nil {
		return err
	}
	gcfg := ycsb.DefaultConfig(wl)
	gcfg.RecordCount = ss.RecordCount
	if gcfg.RecordCount == 0 {
		gcfg.RecordCount = 20_000
	}
	gcfg.Seed = rng.DeriveSeed(n.seed, "svc-gen", ss.Name)
	gen := ycsb.NewGenerator(gcfg)
	svc.Load(gen)

	if _, err := n.kl.RunServicePod(ss.Name, svc.Process()); err != nil {
		return err
	}
	// 10x-compressed bursty traffic, as in the single-node evaluation.
	tr := ycsb.NewTraffic(6e8, 9e8, 5e7, 1e8, ss.RPS,
		rng.DeriveSeed(n.seed, "svc-traffic", ss.Name))
	client := lcservice.NewClient(svc, gen, tr)
	client.Start()
	n.services[ss.Name] = &nodeService{spec: ss, svc: svc, client: client, store: store}
	return nil
}

// PlaceReplica launches one replica of a replicated (traffic-driven)
// service: the same store + lcservice + Guaranteed pod path as
// PlaceService, but with no closed-loop client — the load-balancer tier
// submits its requests. Store and load seeds derive from the service
// name (not the replica name), so every replica holds an identical
// preloaded working set wherever and whenever it boots.
func (n *Node) PlaceReplica(name, service string, rs scenario.ReplicatedService) error {
	if _, dup := n.services[name]; dup {
		return fmt.Errorf("cluster: node %d already runs replica %s", n.ID, name)
	}
	store, err := newStore(rs.Store, rng.DeriveSeed(n.seed, "replica-store", service))
	if err != nil {
		return err
	}
	svc := lcservice.Launch(n.k, store, lcservice.DefaultConfigFor(rs.Store))
	wl, err := ycsb.ByName(rs.WorkloadName())
	if err != nil {
		return err
	}
	gcfg := ycsb.DefaultConfig(wl)
	gcfg.RecordCount = rs.Records()
	gcfg.Seed = rng.DeriveSeed(n.seed, "replica-gen", service)
	svc.Load(ycsb.NewGenerator(gcfg))
	if _, err := n.kl.RunServicePod(name, svc.Process()); err != nil {
		return err
	}
	n.services[name] = &nodeService{
		spec:  ServiceSpec{Name: name, Store: rs.Store, Workload: rs.WorkloadName()},
		svc:   svc,
		store: store,
	}
	return nil
}

// RetireReplica removes a drained replica: the pod is deleted and the
// service instance forgotten (the autoscaler's scale-down completion).
func (n *Node) RetireReplica(name string) error {
	s := n.services[name]
	if s == nil {
		return fmt.Errorf("cluster: node %d has no replica %s", n.ID, name)
	}
	delete(n.services, name)
	return n.kl.DeletePod(name)
}

// PlaceBatch admits a BestEffort pod through the kubelite agent; the
// node's Holmes daemon discovers it via the cgroup watch and manages its
// sibling access from then on.
func (n *Node) PlaceBatch(name string, kind batch.Kind, containers, threads, units int) error {
	_, err := n.kl.RunPod(kubelite.PodSpec{
		Name:                name,
		QoS:                 kubelite.BestEffort,
		Containers:          containers,
		ThreadsPerContainer: threads,
		Kind:                kind,
		WorkUnitsPerThread:  units,
		MemoryBytes:         1 << 30,
	})
	return err
}

// EvictBatch deletes a BestEffort pod (the reconciler's action); the pod
// resumes from its checkpoint wherever the scheduler re-places it.
func (n *Node) EvictBatch(name string) error { return n.kl.DeletePod(name) }

// HasBatch reports whether a BestEffort pod by that name still runs on
// this node — the control plane's bookings can go stale across a reboot.
func (n *Node) HasBatch(name string) bool {
	pod := n.kl.Pod(name)
	return pod != nil && pod.Spec.QoS == kubelite.BestEffort
}

// Fence reconciles a rejoining node against the control plane's current
// view: every BestEffort pod not in keepPods and every service the
// control plane no longer books here (keepService false) is deleted.
// A node that was falsely declared dead may have been doing work the
// scheduler already re-placed elsewhere; fencing kills the zombies so
// two instances never run at once. Returns the number of pods removed.
func (n *Node) Fence(keepPods map[string]bool, keepService func(string) bool) (int, error) {
	fenced := 0
	for _, name := range n.kl.PodNames() {
		pod := n.kl.Pod(name)
		switch pod.Spec.QoS {
		case kubelite.BestEffort:
			if keepPods[name] {
				continue
			}
		default:
			s := n.services[name]
			if s == nil || keepService(name) {
				continue
			}
			if s.client != nil {
				s.client.Stop()
			}
			delete(n.services, name)
		}
		if err := n.kl.DeletePod(name); err != nil {
			return fenced, err
		}
		fenced++
	}
	return fenced, nil
}

// DaemonStats exposes the node daemon's counters (safe-mode entries,
// re-scan repairs, ...) so the cluster result can aggregate degradation
// activity across the fleet.
func (n *Node) DaemonStats() core.DaemonStats { return n.kl.Holmes().Snapshot() }

// BatchUnitsDone returns a BestEffort pod's completed work units — the
// checkpoint the reconciler requeues an evicted pod from.
func (n *Node) BatchUnitsDone(name string) int {
	if pod := n.kl.Pod(name); pod != nil {
		return pod.CompletedWorkUnits()
	}
	return 0
}

// ReapFinished deletes every finite BestEffort pod that has drained its
// work, returning the reclaimed pod names in deterministic order.
func (n *Node) ReapFinished() ([]string, error) {
	var done []string
	for _, name := range n.kl.PodNames() {
		pod := n.kl.Pod(name)
		if pod.Spec.QoS != kubelite.BestEffort || !pod.Finished() {
			continue
		}
		if err := n.kl.DeletePod(name); err != nil {
			return done, err
		}
		n.completedPods++
		done = append(done, name)
	}
	return done, nil
}

// BeginMeasurement opens the measured window: latency histograms reset
// and the utilization / completion baselines are captured.
func (n *Node) BeginMeasurement() {
	for _, s := range n.services {
		s.svc.ResetLatencies()
	}
	n.busyBase = n.totalBusy()
	n.completedPods = 0
}

func (n *Node) totalBusy() float64 {
	var busy float64
	for p := 0; p < n.m.Topology().LogicalCPUs(); p++ {
		busy += n.m.BusyCycles(p)
	}
	return busy
}

// Utilization returns the node-wide busy fraction since BeginMeasurement.
func (n *Node) Utilization(windowNs int64) float64 {
	nCPU := float64(n.m.Topology().LogicalCPUs())
	return (n.totalBusy() - n.busyBase) /
		(n.m.Config().FreqGHz * float64(windowNs) * nCPU)
}

// CompletedPods returns finite BestEffort pods reaped since
// BeginMeasurement.
func (n *Node) CompletedPods() int { return n.completedPods }

// Stop halts the node's daemon and clients.
func (n *Node) Stop() {
	for _, s := range n.services {
		if s.client != nil {
			s.client.Stop()
		}
	}
	n.kl.Stop()
}

// newStore mirrors the experiments/scenario constructors (kept local so
// cluster does not depend on either package).
func newStore(name string, seed uint64) (kvstore.Store, error) {
	switch name {
	case "redis":
		cfg := redis.DefaultConfig()
		cfg.Seed = seed
		return redis.New(cfg), nil
	case "memcached":
		return memcached.New(memcached.DefaultConfig()), nil
	case "rocksdb":
		cfg := rocksdb.DefaultConfig()
		cfg.Seed = seed
		return rocksdb.New(cfg), nil
	case "wiredtiger":
		cfg := wiredtiger.DefaultConfig()
		cfg.Seed = seed
		return wiredtiger.New(cfg), nil
	}
	return nil, fmt.Errorf("cluster: unknown store %q", name)
}
