package cluster

import "testing"

func TestScoringSpreadsGuaranteed(t *testing.T) {
	sts := mkStates([2]int{6, 0}, [2]int{0, 0}, [2]int{6, 0})
	sts[0].TrendVPI = 10
	sts[2].TrendVPI = 5
	got := (ScoringPlacer{}).Place(sts, PodRequest{Guaranteed: true, Threads: 4})
	if got != 1 {
		t.Fatalf("guaranteed pod placed on node %d, want 1 (empty, quiet)", got)
	}
}

func TestScoringBackfillsLendableSiblings(t *testing.T) {
	// Node 1 hosts a service whose reserved cores granted lendable
	// siblings — measured-quiet SMT capacity. The score prefers it over
	// the emptier node 0: lendable credit outweighs occupancy.
	sts := mkStates([2]int{0, 0}, [2]int{2, 0})
	sts[1].HB.Lendable = 4
	got := (ScoringPlacer{}).Place(sts, PodRequest{Threads: 4})
	if got != 1 {
		t.Fatalf("besteffort pod placed on node %d, want 1 (lendable siblings)", got)
	}
}

func TestScoringAvoidsHotAndSuspectUnlessOnlyFit(t *testing.T) {
	sts := mkStates([2]int{0, 0}, [2]int{8, 0})
	sts[0].Hot = 2
	if got := (ScoringPlacer{}).Place(sts, PodRequest{Threads: 4}); got != 1 {
		t.Fatalf("besteffort pod placed on node %d, want 1 (node 0 hot)", got)
	}
	sts[0].Hot = 0
	sts[0].Suspect = true
	if got := (ScoringPlacer{}).Place(sts, PodRequest{Guaranteed: true, Threads: 4}); got != 1 {
		t.Fatalf("guaranteed pod placed on node %d, want 1 (node 0 suspect)", got)
	}
	// The penalties are cliffs, not gates: when only the hot/suspect node
	// fits, placing still beats dropping.
	sts[1].HB.ServiceThreads = 16
	if got := (ScoringPlacer{}).Place(sts, PodRequest{Threads: 4}); got != 0 {
		t.Fatalf("besteffort pod placed on node %d, want 0 (only fit)", got)
	}
}

func TestScoringCapacityGate(t *testing.T) {
	sts := mkStates([2]int{16, 0}, [2]int{14, 0})
	if got := (ScoringPlacer{}).Place(sts, PodRequest{Threads: 4}); got != -1 {
		t.Fatalf("placed an unfittable pod on node %d", got)
	}
	if got := (ScoringPlacer{}).Place(sts, PodRequest{Threads: 2}); got != 1 {
		t.Fatalf("pod placed on node %d, want 1 (only fit)", got)
	}
}

func TestScoringLowestIDTieBreak(t *testing.T) {
	sts := mkStates([2]int{4, 0}, [2]int{4, 0}, [2]int{4, 0})
	for _, req := range []PodRequest{{Threads: 4}, {Guaranteed: true, Threads: 4}} {
		if got := (ScoringPlacer{}).Place(sts, req); got != 0 {
			t.Fatalf("tie broken to node %d, want 0 (lowest ID), req %+v", got, req)
		}
	}
}

// TestVPIAwareExplicitIDTieBreak pins the bugfix: the lowest-ID rule must
// be explicit in the selection key, not an artifact of ascending scan
// order, so shard-merged candidate selection cannot silently change
// decisions. The registry here presents identical keys on every node; the
// sharded path must agree with the full rescan on node 0 — including in
// the avoid tier (all nodes hot/suspect).
func TestVPIAwareExplicitIDTieBreak(t *testing.T) {
	mk := func() []NodeState {
		sts := mkStates([2]int{4, 0}, [2]int{4, 0}, [2]int{4, 0}, [2]int{4, 0})
		for i := range sts {
			sts[i].HB.SmoothedVPI = 7
			sts[i].HB.Lendable = 2
		}
		return sts
	}
	load := func(sts []NodeState, shardSize int) *Registry {
		g := newRegistry(len(sts), shardSize)
		for i, st := range sts {
			g.Reset(i, st)
		}
		return g
	}
	reqs := []PodRequest{{Threads: 4}, {Guaranteed: true, Threads: 4}}

	// Best tier: all keys equal.
	sts := mk()
	for _, req := range reqs {
		if got := (VPIAware{}).Place(sts, req); got != 0 {
			t.Fatalf("best-tier tie broken to node %d, want 0, req %+v", got, req)
		}
		for _, shardSize := range []int{1, 2, 4} {
			if got := (VPIAware{}).PlaceReg(load(sts, shardSize), req); got != 0 {
				t.Fatalf("sharded best-tier tie (shard %d) broken to node %d, want 0, req %+v",
					shardSize, got, req)
			}
		}
	}

	// Avoid tier: every node suspect (and hot, for the BestEffort path),
	// keys still equal.
	sts = mk()
	for i := range sts {
		sts[i].Suspect = true
		sts[i].Hot = 2
	}
	for _, req := range reqs {
		if got := (VPIAware{}).Place(sts, req); got != 0 {
			t.Fatalf("avoid-tier tie broken to node %d, want 0, req %+v", got, req)
		}
		for _, shardSize := range []int{1, 2, 4} {
			if got := (VPIAware{}).PlaceReg(load(sts, shardSize), req); got != 0 {
				t.Fatalf("sharded avoid-tier tie (shard %d) broken to node %d, want 0, req %+v",
					shardSize, got, req)
			}
		}
	}
}
