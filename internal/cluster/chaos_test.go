package cluster

import (
	"testing"

	"github.com/holmes-colocation/holmes/internal/faults"
)

func TestRequeueBackoff(t *testing.T) {
	cases := []struct{ evictions, want int }{
		// Zero (and any nonsense below it) takes the minimum backoff
		// instead of panicking on a negative shift.
		{-1, 1}, {0, 1},
		{1, 1}, {2, 2}, {3, 4}, {4, 8}, {5, 8}, {10, 8},
	}
	for _, tc := range cases {
		if got := requeueBackoff(tc.evictions); got != tc.want {
			t.Errorf("requeueBackoff(%d) = %d, want %d", tc.evictions, got, tc.want)
		}
	}
}

// TestMaxEvictionsNeverLivelocks drives the reconciler as hard as it can
// go: every node is permanently "hot", so without the pinning bound each
// pod would be evicted and re-placed onto another hot node forever. The
// eviction total must respect pods x MaxEvictions and the run must still
// finish its batch work.
func TestMaxEvictionsNeverLivelocks(t *testing.T) {
	spec := testSpec()
	spec.EvictVPI = 0.001 // any activity at all reads as hot
	spec.HotRounds = 1
	spec.MaxEvictions = 1
	spec.DurationSeconds = 1.2
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("scenario never exercised the reconciler")
	}
	ceiling := spec.Batch.Pods * spec.MaxEvictions
	if res.Evictions > ceiling {
		t.Fatalf("%d evictions exceed the pinning ceiling %d — pods are cycling",
			res.Evictions, ceiling)
	}
	if res.BatchCompleted == 0 {
		t.Fatal("no batch pod ever completed under eviction pressure")
	}
}

// chaosSpec is testSpec under the full default fault schedule.
func chaosSpec() Spec {
	s := testSpec()
	s.DurationSeconds = 1.0
	ch := faults.DefaultSchedule()
	s.Chaos = &ch
	return s
}

func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	spec := chaosSpec()
	r1, err := Run(spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(spec, RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Fatalf("chaos run differs between Workers 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			r1.Render(), r8.Render())
	}
}

// TestCrashedNodeDetectedAndRescheduled crashes the batch-only node for
// good: the detector must declare it dead and the run must still finish
// with every service measured.
func TestCrashedNodeDetectedAndRescheduled(t *testing.T) {
	spec := testSpec()
	spec.DurationSeconds = 1.2
	// testSpec places its two services on nodes 0 and 1 (empty-registry
	// ties break by lowest ID), leaving node 2 batch-only.
	spec.Chaos = &faults.Spec{Nodes: faults.NodeSpec{
		Crashes: []faults.NodeCrash{{Node: 2, Round: 8}},
	}}
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if res.NodesDied != 1 {
		t.Fatalf("detector declared %d nodes dead, want 1", res.NodesDied)
	}
	if res.Reboots != 0 || res.NodesRejoined != 0 {
		t.Fatalf("node 2 should stay down: %d reboots, %d rejoins", res.Reboots, res.NodesRejoined)
	}
	for _, s := range res.Services {
		if s.Lost || s.Queries == 0 {
			t.Fatalf("service %s lost measurement to a batch-node crash", s.Name)
		}
	}
	if res.BatchCompleted == 0 {
		t.Fatal("no batch pods completed despite two healthy nodes")
	}
}

// TestServiceFailsOverFromCrashedNode kills a service-hosting node and
// expects the control plane to re-place the service elsewhere.
func TestServiceFailsOverFromCrashedNode(t *testing.T) {
	spec := testSpec()
	spec.DurationSeconds = 1.6
	spec.Chaos = &faults.Spec{Nodes: faults.NodeSpec{
		Crashes: []faults.NodeCrash{{Node: 0, Round: 6}},
	}}
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceFailovers == 0 {
		t.Fatal("no service failover recorded for a crashed service node")
	}
	for _, s := range res.Services {
		if s.Lost {
			t.Fatalf("service %s never failed over", s.Name)
		}
		if s.Node == 0 {
			t.Fatalf("service %s still booked on the dead node", s.Name)
		}
		if s.Queries == 0 {
			t.Fatalf("failed-over service %s measured no queries", s.Name)
		}
	}
}

// TestFalseDeathRejoinFences partitions a healthy node long enough to be
// declared dead. When its heartbeats come back, the control plane must
// count a rejoin and fence the zombie service instance it already failed
// over elsewhere.
func TestFalseDeathRejoinFences(t *testing.T) {
	spec := testSpec()
	spec.DurationSeconds = 1.6
	spec.Chaos = &faults.Spec{Nodes: faults.NodeSpec{
		Partitions: []faults.NodePartition{{Node: 1, Round: 6, Rounds: 8}},
	}}
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 {
		t.Fatalf("partition counted as %d crashes", res.Crashes)
	}
	if res.NodesDied != 1 || res.NodesRejoined != 1 {
		t.Fatalf("died %d / rejoined %d, want 1 / 1", res.NodesDied, res.NodesRejoined)
	}
	if res.FencedPods == 0 {
		t.Fatal("rejoining node kept its zombie pods — fencing never ran")
	}
	for _, s := range res.Services {
		if s.Lost {
			t.Fatalf("service %s lost after failover + rejoin", s.Name)
		}
	}
}

// TestHeartbeatLossTolerated: scattered single-round losses must raise
// suspicion at most, never a death.
func TestHeartbeatLossTolerated(t *testing.T) {
	spec := testSpec()
	spec.Chaos = &faults.Spec{Nodes: faults.NodeSpec{HeartbeatLossRate: 0.1}}
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.HeartbeatsMissed == 0 {
		t.Fatal("scenario lost no heartbeats")
	}
	if res.NodesDied != 0 {
		t.Fatalf("detector killed %d nodes over scattered heartbeat loss", res.NodesDied)
	}
	for _, s := range res.Services {
		if s.Lost || s.Queries == 0 {
			t.Fatalf("service %s disrupted by heartbeat loss alone", s.Name)
		}
	}
}

// TestDarkCountersTriggerSafeMode wires only the counter fault: every
// node's counters die partway in, and the per-node watchdogs must all
// fall back to the static partition.
func TestDarkCountersTriggerSafeMode(t *testing.T) {
	spec := testSpec()
	spec.Chaos = &faults.Spec{Counters: faults.CounterSpec{DeadAtFraction: 0.4}}
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafeModeEntries == 0 {
		t.Fatal("no node entered safe mode on dark counters")
	}
	ctrl := spec
	ctrl.DisableDegradation = true
	cres, err := Run(ctrl, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cres.SafeModeEntries != 0 {
		t.Fatalf("control arm entered safe mode %d times with degradation disabled", cres.SafeModeEntries)
	}
}

// TestNoChaosResultHasNoFaultStats pins that a fault-free run reports
// zeroes everywhere the chaos machinery could leak.
func TestNoChaosResultHasNoFaultStats(t *testing.T) {
	res, err := Run(testSpec(), RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes+res.Reboots+res.HeartbeatsMissed+res.SlowRounds+
		res.NodesDied+res.NodesRejoined+res.CheckpointRequeues+
		res.ServiceFailovers+res.FencedPods != 0 || res.SafeModeEntries != 0 || res.RescanRepairs != 0 {
		t.Fatalf("fault-free run reports fault activity: %+v", res)
	}
	if res.PageAlerts != 0 {
		t.Fatalf("fault-free run fired %d page alerts", res.PageAlerts)
	}
}
