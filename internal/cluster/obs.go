package cluster

import (
	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/telemetry"
)

// Fleet SLO policy: the burn-rate engine runs unconditionally inside
// Run — its alert stream feeds the reconciler — so these are part of the
// control plane's deterministic behavior, not observability opt-ins.
//
// The latency SLO budgets 5% of queries over the per-query SLO; a page
// needs a 10x burn (>50% of queries violating) sustained across both
// windows, which a healthy colocation run can never reach. The
// availability SLO budgets 1% node-rounds down; one crashed node in a
// small fleet burns 10-20x, so the chaos experiment's scripted crash
// reliably pages while a crash-free run cannot (zero bad units).
// The requests SLO exists only when the topology runs the resilience
// layer: it budgets 5% client-visible failures (shed + expired + dropped
// + lost against completions) and pages at a 10x burn — i.e. >50% of the
// fleet's request outcomes failing across both windows, which is exactly
// the metastable-collapse signature the storm experiment provokes.
// Gating it on the topology keeps every non-resilient run's alert
// stream (and, through Paging, its reconciler and autoscalers)
// byte-identical to before.
const (
	sloLatencyBudget = 0.05
	sloLatencyPage   = 10
	sloLatencyTicket = 2
	sloAvailBudget   = 0.01
	sloAvailPage     = 10
	sloReqBudget     = 0.05
	sloReqPage       = 10
	sloReqTicket     = 2
)

// newBurnEngine builds the fleet SLO engine for a run. Window lengths
// scale with the run so tiny test runs still have a short window inside
// the measured period: short = max(2, rounds/30), long = max(6, rounds/8).
func newBurnEngine(spec Spec, totalRounds int) *obs.BurnEngine {
	short := totalRounds / 30
	if short < 2 {
		short = 2
	}
	long := totalRounds / 8
	if long < 6 {
		long = 6
	}
	cfgs := []obs.SLOConfig{
		{
			Name: "latency", Objective: sloLatencyBudget,
			ShortRounds: short, LongRounds: long,
			PageBurn: sloLatencyPage, TicketBurn: sloLatencyTicket,
			MinUnits: 100,
		},
		{
			Name: "availability", Objective: sloAvailBudget,
			ShortRounds: short, LongRounds: long,
			PageBurn: sloAvailPage,
			MinUnits: int64(2 * spec.Nodes),
		},
	}
	if spec.resilientTopology() {
		cfgs = append(cfgs, obs.SLOConfig{
			Name: "requests", Objective: sloReqBudget,
			ShortRounds: short, LongRounds: long,
			PageBurn: sloReqPage, TicketBurn: sloReqTicket,
			MinUnits: 200,
		})
	}
	return obs.NewBurnEngine(cfgs...)
}

// runTracer records the control plane's pod-lifecycle spans: the causal
// chain admit → place → run → quarantine → evict → requeue → reschedule →
// complete, plus service placement/failover and node crash/reboot. All
// methods are nil-receiver-safe, so the run loop traces unconditionally
// and recording simply vanishes when no observability plane is attached —
// the simulation itself never branches on it.
type runTracer struct {
	rec  *telemetry.SpanRecorder
	hbNs int64
	// tail is the last closed span in each pod's chain (the parent of the
	// next stage); runSpan/requeueSpan are the open interval spans.
	tail        map[string]uint64
	runSpan     map[string]uint64
	requeueSpan map[string]uint64
	crashSpan   map[int]uint64
	breakerSpan map[string]uint64
}

func newRunTracer(p *obs.Plane, hbNs int64) *runTracer {
	if p == nil {
		return nil
	}
	return &runTracer{
		rec:  p.Control(),
		hbNs: hbNs,
		tail: map[string]uint64{}, runSpan: map[string]uint64{},
		requeueSpan: map[string]uint64{}, crashSpan: map[int]uint64{},
		breakerSpan: map[string]uint64{},
	}
}

// roundNs is the control-plane timestamp for decisions taken in round r.
func (t *runTracer) roundNs(r int) int64 { return int64(r) * t.hbNs }

func (t *runTracer) admit(name string, r int) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	t.tail[name] = t.rec.Add(telemetry.Span{Kind: telemetry.SpanPodAdmit,
		StartNs: now, EndNs: now, Node: -1, CPU: -1, Name: name})
}

// place records a placement. A pod with an open requeue interval is being
// rescheduled: the requeue closes and the placement is a Reschedule span.
func (t *runTracer) place(name string, r, node int) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	kind := telemetry.SpanPodPlace
	if id, ok := t.requeueSpan[name]; ok {
		t.rec.Finish(id, now)
		delete(t.requeueSpan, name)
		t.tail[name] = id
		kind = telemetry.SpanPodReschedule
	}
	placed := t.rec.Add(telemetry.Span{Kind: kind, Parent: t.tail[name],
		StartNs: now, EndNs: now, Node: node, CPU: -1, Name: name})
	t.tail[name] = placed
	t.runSpan[name] = t.rec.Start(telemetry.Span{Kind: telemetry.SpanPodRun,
		Parent: placed, StartNs: now, Node: node, CPU: -1, Name: name})
}

// evict closes the pod's run interval, backfills the quarantine interval
// (the hot streak that armed the eviction), records the eviction and opens
// the requeue interval that the next placement will close.
func (t *runTracer) evict(name string, r, node, hotStreak int, trendVPI float64) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	if id, ok := t.runSpan[name]; ok {
		t.rec.Finish(id, now)
		delete(t.runSpan, name)
	}
	qStart := t.roundNs(r - hotStreak)
	if qStart < 0 {
		qStart = 0
	}
	quarantine := t.rec.Add(telemetry.Span{Kind: telemetry.SpanPodQuarantine,
		Parent: t.tail[name], StartNs: qStart, EndNs: now,
		Node: node, CPU: -1, Name: name, Value: trendVPI})
	evicted := t.rec.Add(telemetry.Span{Kind: telemetry.SpanPodEvict,
		Parent: quarantine, StartNs: now, EndNs: now,
		Node: node, CPU: -1, Name: name, Value: trendVPI})
	t.tail[name] = evicted
	t.requeueSpan[name] = t.rec.Start(telemetry.Span{Kind: telemetry.SpanPodRequeue,
		Parent: evicted, StartNs: now, Node: -1, CPU: -1, Name: name})
}

// requeue opens a requeue interval without an eviction decision — the
// checkpoint-reschedule path when a pod's node died.
func (t *runTracer) requeue(name string, r int, detail string) {
	if t == nil {
		return
	}
	if _, open := t.requeueSpan[name]; open {
		return
	}
	now := t.roundNs(r)
	if id, ok := t.runSpan[name]; ok {
		t.rec.Finish(id, now)
		delete(t.runSpan, name)
	}
	t.requeueSpan[name] = t.rec.Start(telemetry.Span{Kind: telemetry.SpanPodRequeue,
		Parent: t.tail[name], StartNs: now, Node: -1, CPU: -1,
		Name: name, Detail: detail})
}

func (t *runTracer) complete(name string, r int) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	if id, ok := t.runSpan[name]; ok {
		t.rec.Finish(id, now)
		delete(t.runSpan, name)
	}
	t.rec.Add(telemetry.Span{Kind: telemetry.SpanPodComplete,
		Parent: t.tail[name], StartNs: now, EndNs: now,
		Node: -1, CPU: -1, Name: name})
	delete(t.tail, name)
}

// servicePlace records a Guaranteed placement; one closing an open
// requeue interval (the node-lost path) is a failover.
func (t *runTracer) servicePlace(name string, r, node int) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	kind := telemetry.SpanServicePlace
	if id, ok := t.requeueSpan[name]; ok {
		t.rec.Finish(id, now)
		delete(t.requeueSpan, name)
		t.tail[name] = id
		kind = telemetry.SpanServiceFailover
	}
	t.tail[name] = t.rec.Add(telemetry.Span{Kind: kind, Parent: t.tail[name],
		StartNs: now, EndNs: now, Node: node, CPU: -1, Name: name})
}

// replicaScaleUp records an autoscaler grow decision for a service;
// Value carries the per-replica queue depth that armed it.
func (t *runTracer) replicaScaleUp(svc string, r int, depth float64) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	t.rec.Add(telemetry.Span{Kind: telemetry.SpanReplicaScaleUp,
		StartNs: now, EndNs: now, Node: -1, CPU: -1, Name: svc, Value: depth})
}

// replicaScaleDown records an autoscaler shrink decision: the named
// replica starts draining on its node.
func (t *runTracer) replicaScaleDown(name string, r, node int, depth float64) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	t.rec.Add(telemetry.Span{Kind: telemetry.SpanReplicaScaleDown,
		StartNs: now, EndNs: now, Node: node, CPU: -1, Name: name, Value: depth})
}

// replicaRetire records a replica leaving the fleet — a drained
// scale-down or a node loss (the detail says which).
func (t *runTracer) replicaRetire(name string, r, node int, detail string) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	t.rec.Add(telemetry.Span{Kind: telemetry.SpanReplicaRetire,
		StartNs: now, EndNs: now, Node: node, CPU: -1, Name: name, Detail: detail})
}

// breakerOpen starts the interval span covering one open/half-open
// episode of a service's circuit breaker; value carries the windowed
// failure rate at the trip. A re-trip during half-open extends the same
// episode rather than stacking spans.
func (t *runTracer) breakerOpen(svc string, r int, rate float64) {
	if t == nil {
		return
	}
	if _, ok := t.breakerSpan[svc]; ok {
		return
	}
	t.breakerSpan[svc] = t.rec.Start(telemetry.Span{Kind: telemetry.SpanBreakerOpen,
		StartNs: t.roundNs(r), Node: -1, CPU: -1, Name: svc, Value: rate})
}

// breakerClose finishes the episode when the breaker returns to closed.
func (t *runTracer) breakerClose(svc string, r int) {
	if t == nil {
		return
	}
	if id, ok := t.breakerSpan[svc]; ok {
		t.rec.Finish(id, t.roundNs(r))
		delete(t.breakerSpan, svc)
	}
}

func (t *runTracer) nodeCrash(node, r int) {
	if t == nil {
		return
	}
	t.crashSpan[node] = t.rec.Start(telemetry.Span{Kind: telemetry.SpanNodeCrash,
		StartNs: t.roundNs(r), Node: node, CPU: -1})
}

func (t *runTracer) nodeReboot(node, r int) {
	if t == nil {
		return
	}
	now := t.roundNs(r)
	if id, ok := t.crashSpan[node]; ok {
		t.rec.Finish(id, now)
		delete(t.crashSpan, node)
	}
	t.rec.Add(telemetry.Span{Kind: telemetry.SpanNodeReboot,
		StartNs: now, EndNs: now, Node: node, CPU: -1})
}

// fleetRollup appends this round's fleet aggregates to the plane's store.
type fleetRollup struct {
	store *obs.Store
	hbNs  int64
}

func newFleetRollup(p *obs.Plane, hbNs int64) *fleetRollup {
	if p == nil {
		return nil
	}
	return &fleetRollup{store: p.Store, hbNs: hbNs}
}

func (f *fleetRollup) record(r int, states []NodeState, down []bool, goodQ, badQ int64) {
	if f == nil {
		return
	}
	now := int64(r) * f.hbNs
	var vpi, util, p99 float64
	var lendable, up, measured int
	for i, st := range states {
		if down[i] || st.Dead {
			continue
		}
		up++
		vpi += st.TrendVPI
		util += st.HB.LCUtil
		lendable += st.HB.Lendable
		if st.HB.P99Ns > 0 {
			p99 += st.HB.P99Ns
			measured++
		}
	}
	if up > 0 {
		vpi /= float64(up)
		util /= float64(up)
	}
	f.store.Series("fleet/mean_vpi").Append(now, vpi)
	f.store.Series("fleet/lc_util").Append(now, util)
	f.store.Series("fleet/lendable_siblings").Append(now, float64(lendable))
	f.store.Series("fleet/nodes_up").Append(now, float64(up))
	if measured > 0 {
		f.store.Series("fleet/service_p99_us").Append(now, p99/float64(measured)/1e3)
	}
	if goodQ+badQ > 0 {
		f.store.Series("fleet/slo_bad_fraction").Append(now,
			float64(badQ)/float64(goodQ+badQ))
	}
}

// publishAlerts mirrors burn-engine transitions to the telemetry set's
// alert log (the /alerts endpoint) and the observability plane.
func publishAlerts(set *telemetry.Set, p *obs.Plane, alerts []obs.Alert) {
	if len(alerts) == 0 {
		return
	}
	p.RecordAlerts(alerts)
	if set != nil {
		for _, a := range alerts {
			set.PublishAlert(telemetry.Alert{
				TimeNs: a.TimeNs, Name: a.SLO, Severity: a.Severity,
				Firing: a.Firing, Burn: a.LongBurn,
			})
		}
	}
}
