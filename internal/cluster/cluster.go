// Package cluster is the multi-node control plane over kubelite nodes:
// the paper's §8 future work (cluster-manager integration) lifted from
// one machine to a fleet. Every node is a full simulated machine with a
// kernel, a cgroup filesystem, a Holmes daemon and a kubelite agent; the
// control plane coordinates them in heartbeat rounds —
//
//   - a node registry holds each node's latest telemetry snapshot
//     (per-CPU VPI, reserved-pool size, LC utilization, batch occupancy);
//   - a placement scheduler scores candidate nodes per pod: the
//     VPI-aware policy spreads Guaranteed pods away from interfered
//     nodes and backfills BestEffort pods onto lendable SMT capacity,
//     with plain bin-packing as the baseline;
//   - a reconciler evicts BestEffort pods off nodes whose smoothed VPI
//     stays above threshold, rescheduling them with bounded retries and
//     exponential backoff so draining cannot livelock.
//
// Between rounds the nodes are mutually independent, so the cluster
// advances them on the internal/runner pool; with per-node seeds derived
// via rng.DeriveSeed the run is byte-identical at any parallelism.
package cluster

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/holmes-colocation/holmes/internal/batch"
	"github.com/holmes-colocation/holmes/internal/runner"
	"github.com/holmes-colocation/holmes/internal/stats"
	"github.com/holmes-colocation/holmes/internal/telemetry"
	"github.com/holmes-colocation/holmes/internal/trace"
)

// RunOptions are the execution knobs that are not part of the workload
// description: Workers bounds node-simulation parallelism (<= 1 serial;
// results identical either way) and Telemetry, when non-nil, receives
// every node's daemon metrics plus the control plane's own counters.
type RunOptions struct {
	Workers   int
	Telemetry *telemetry.Set
}

// maxPlaceRetries bounds how many rounds a pending pod is retried when no
// node fits before it is dropped and counted as a failed placement. Waiting
// for capacity is normal (pods queue while earlier ones drain), so the
// bound is generous; it exists to stop a pod the fleet can never fit from
// circulating forever.
const maxPlaceRetries = 400

// maxBackoffRounds caps the reconciler's exponential requeue backoff.
const maxBackoffRounds = 8

// trendAlpha is the per-round EWMA weight for a node's VPI trend.
const trendAlpha = 0.3

// debugVPI prints per-round node VPI trends (development aid).
var debugVPI = os.Getenv("HOLMES_CLUSTER_DEBUG") != ""

// pendingPod is one queue entry awaiting placement.
type pendingPod struct {
	req  PodRequest
	svc  *ServiceSpec // non-nil for Guaranteed service pods
	kind batch.Kind
	containers, threads, units int
	retries   int // placement attempts that found no node
	evictions int // times the reconciler has evicted this pod
	notBefore int // earliest round for the next attempt
}

// placedPod tracks a running BestEffort pod for the reconciler.
type placedPod struct {
	pending *pendingPod
	node    int
	seq     int // placement sequence, for youngest-first eviction
}

// ServiceResult is one Guaranteed service's measured outcome.
type ServiceResult struct {
	Name     string
	Store    string
	Workload string
	Node     int
	Queries  int64
	Summary  stats.Summary
	// SLOViolations is the fraction of measured queries over the SLO.
	SLOViolations float64
}

// Result is a cluster run's outcome.
type Result struct {
	Spec     Spec
	Rounds   int
	Services []ServiceResult
	// MeanP99/WorstP99 aggregate the services' p99 latency (ns).
	MeanP99  float64
	WorstP99 float64
	// SLOViolationRatio is the query-weighted violation fraction.
	SLOViolationRatio float64
	// ClusterUtil is the mean node-wide busy fraction over the window.
	ClusterUtil float64
	// BatchCompleted counts finite BestEffort pods finished in-window.
	BatchCompleted int
	// PeakSmoothedVPI is the highest per-node VPI trend the registry held
	// during the measured window (reconciler diagnostics).
	PeakSmoothedVPI float64
	// Control-plane statistics (whole run, including warmup).
	PlacedBatch      int
	Evictions        int
	Requeues         int
	FailedPlacements int
	PinnedPods       int
}

// Run executes the cluster described by spec.
func Run(spec Spec, opt RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	placer, err := NewPlacer(spec.placer())
	if err != nil {
		return nil, err
	}
	kinds, err := spec.Batch.kinds()
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}

	hbNs := spec.heartbeatNs()
	warmupRounds := int((int64(spec.WarmupSeconds*1e9) + hbNs - 1) / hbNs)
	measureRounds := int((int64(spec.DurationSeconds*1e9) + hbNs - 1) / hbNs)
	if measureRounds < 1 {
		measureRounds = 1
	}
	totalRounds := warmupRounds + measureRounds

	var tel clusterTelemetry
	tel.resolve(opt.Telemetry)

	// Boot the fleet. Nodes are independent, so boot fans out on the
	// worker pool; each node's seed derives from (spec.Seed, node ID).
	nodes := make([]*Node, spec.Nodes)
	boots := make([]func() error, spec.Nodes)
	for i := range nodes {
		i := i
		boots[i] = func() error {
			n, err := bootNode(spec, i, opt.Telemetry)
			if err != nil {
				return err
			}
			nodes[i] = n
			return nil
		}
	}
	if err := runner.Run(workers, boots); err != nil {
		return nil, err
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Stop()
			}
		}
	}()

	// The registry: one state per node, refreshed each round.
	states := make([]NodeState, spec.Nodes)
	for i := range states {
		states[i] = NodeState{ID: i, HB: nodes[i].Heartbeat()}
	}

	// Pending queue: services first (placed in round 0), then the batch
	// stream's arrivals.
	var queue []*pendingPod
	for i := range spec.Services {
		ss := spec.Services[i]
		queue = append(queue, &pendingPod{
			req: PodRequest{Name: ss.Name, Guaranteed: true, Threads: serviceThreads(ss.Store)},
			svc: &ss,
		})
	}
	containers, threads, units := spec.Batch.podSpecShape()
	arrived := 0
	res := &Result{Spec: spec}
	serviceNode := map[string]int{}
	placed := map[string]*placedPod{}
	placeSeq := 0

	for r := 0; r < totalRounds; r++ {
		if r == warmupRounds {
			for _, n := range nodes {
				n.BeginMeasurement()
			}
		}

		// Batch arrivals for this round (PodsPerRound <= 0: all at once).
		perRound := spec.Batch.PodsPerRound
		if perRound <= 0 {
			perRound = spec.Batch.Pods
		}
		for a := 0; a < perRound && arrived < spec.Batch.Pods; a++ {
			name := fmt.Sprintf("batch-%03d", arrived)
			queue = append(queue, &pendingPod{
				req:        PodRequest{Name: name, Threads: containers * threads},
				kind:       kinds[arrived%len(kinds)],
				containers: containers,
				threads:    threads,
				units:      units,
			})
			arrived++
		}

		// Placement pass, in queue order against the current registry.
		var waiting []*pendingPod
		for _, p := range queue {
			if p.notBefore > r {
				waiting = append(waiting, p)
				continue
			}
			target := placer.Place(states, p.req)
			if target < 0 {
				if p.svc != nil {
					return nil, fmt.Errorf("cluster: no node fits service %s", p.req.Name)
				}
				p.retries++
				if p.retries > maxPlaceRetries {
					res.FailedPlacements++
					tel.inc(tel.failed)
					continue
				}
				p.notBefore = r + 1
				waiting = append(waiting, p)
				continue
			}
			if p.svc != nil {
				if err := nodes[target].PlaceService(*p.svc); err != nil {
					return nil, err
				}
				serviceNode[p.svc.Name] = target
				states[target].HB.ServicePods++
				states[target].HB.ServiceThreads += p.req.Threads
				tel.inc(tel.placedGuaranteed)
			} else {
				if err := nodes[target].PlaceBatch(p.req.Name, p.kind, p.containers, p.threads, p.units); err != nil {
					return nil, err
				}
				res.PlacedBatch++
				placed[p.req.Name] = &placedPod{pending: p, node: target, seq: placeSeq}
				placeSeq++
				states[target].HB.BatchPods++
				states[target].HB.BatchThreads += p.req.Threads
				tel.inc(tel.placedBestEffort)
			}
		}
		queue = waiting

		// Advance every node one heartbeat period, fanned out on the
		// worker pool. Nodes share nothing mid-round, so the outcome is
		// identical at any worker count.
		tasks := make([]func() error, len(nodes))
		for i := range nodes {
			n := nodes[i]
			tasks[i] = func() error { n.Advance(hbNs); return nil }
		}
		if err := runner.Run(workers, tasks); err != nil {
			return nil, err
		}

		// Reap finished pods, then refresh the registry from heartbeats.
		for _, n := range nodes {
			done, err := n.ReapFinished()
			if err != nil {
				return nil, err
			}
			for _, name := range done {
				delete(placed, name)
				tel.inc(tel.completed)
			}
		}
		for i, n := range nodes {
			hb := n.Heartbeat()
			// Trend smooths the heartbeat VPI one more time at the round
			// scale: a single bursty heartbeat cannot arm the reconciler,
			// only a node that keeps reporting interference.
			states[i].TrendVPI += trendAlpha * (hb.SmoothedVPI - states[i].TrendVPI)
			if states[i].TrendVPI >= spec.evictVPI() {
				states[i].Hot++
			} else {
				states[i].Hot = 0
			}
			states[i].HB = hb
			if debugVPI {
				fmt.Printf("round %d node %d hbVPI %.1f trend %.1f hot %d\n",
					r, i, hb.SmoothedVPI, states[i].TrendVPI, states[i].Hot)
			}
			tel.gaugeVPI(i, hb.SmoothedVPI)
			if r >= warmupRounds && states[i].TrendVPI > res.PeakSmoothedVPI {
				res.PeakSmoothedVPI = states[i].TrendVPI
			}
		}

		// Reconcile: drain one BestEffort pod per persistently hot node.
		for _, ev := range reconcileDecisions(states, placed, spec.hotRounds(), spec.maxEvictions()) {
			pp := placed[ev.pod]
			done := nodes[ev.node].BatchUnitsDone(ev.pod)
			if err := nodes[ev.node].EvictBatch(ev.pod); err != nil {
				return nil, err
			}
			// Re-arm: the node must stay hot for another full streak before
			// its next eviction, so draining is paced, not a stampede.
			states[ev.node].Hot = 0
			delete(placed, ev.pod)
			res.Evictions++
			tel.inc(tel.evictions)
			p := pp.pending
			// Checkpoint: the pod resumes from the work it already finished,
			// so an eviction costs rescheduling latency, not lost cycles.
			threads := p.containers * p.threads
			remaining := threads*p.units - done
			p.units = (remaining + threads - 1) / threads
			if p.units < 1 {
				p.units = 1
			}
			p.evictions++
			backoff := 1 << (p.evictions - 1)
			if backoff > maxBackoffRounds {
				backoff = maxBackoffRounds
			}
			p.notBefore = r + 1 + backoff
			p.retries = 0
			queue = append(queue, p)
			res.Requeues++
			tel.inc(tel.requeues)
		}
	}

	// Collect. Service order follows the spec for stable rendering.
	res.Rounds = totalRounds
	windowNs := int64(measureRounds) * hbNs
	slo := spec.sloNs()
	var violations, queries float64
	for _, ss := range spec.Services {
		node := nodes[serviceNode[ss.Name]]
		s := node.services[ss.Name]
		lat := s.svc.Latencies()
		sr := ServiceResult{
			Name:          ss.Name,
			Store:         ss.Store,
			Workload:      defaultStr(ss.Workload, "a"),
			Node:          node.ID,
			Queries:       lat.Count(),
			Summary:       lat.Summarize(),
			SLOViolations: lat.FractionAbove(slo),
		}
		res.Services = append(res.Services, sr)
		res.MeanP99 += sr.Summary.P99
		if sr.Summary.P99 > res.WorstP99 {
			res.WorstP99 = sr.Summary.P99
		}
		violations += sr.SLOViolations * float64(sr.Queries)
		queries += float64(sr.Queries)
	}
	if len(res.Services) > 0 {
		res.MeanP99 /= float64(len(res.Services))
	}
	if queries > 0 {
		res.SLOViolationRatio = violations / queries
	}
	for _, n := range nodes {
		res.ClusterUtil += n.Utilization(windowNs)
		res.BatchCompleted += n.CompletedPods()
	}
	res.ClusterUtil /= float64(len(nodes))
	for _, pp := range placed {
		if pp.pending.evictions >= spec.maxEvictions() {
			res.PinnedPods++
		}
	}
	return res, nil
}

// eviction is one reconciler decision.
type eviction struct {
	node int
	pod  string
}

// reconcileDecisions returns the pods to evict this round: for every node
// hot for at least hotRounds consecutive heartbeats, the youngest
// still-evictable BestEffort pod (least sunk work). Pods already evicted
// maxEvictions times are pinned and never chosen again, which — together
// with the requeue backoff — bounds the reschedule churn.
func reconcileDecisions(states []NodeState, placed map[string]*placedPod, hotRounds, maxEvictions int) []eviction {
	byNode := map[int]*placedPod{}
	names := make([]string, 0, len(placed))
	for name := range placed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pp := placed[name]
		if pp.pending.evictions >= maxEvictions {
			continue
		}
		if cur := byNode[pp.node]; cur == nil || pp.seq > cur.seq {
			byNode[pp.node] = pp
		}
	}
	var evs []eviction
	for _, st := range states {
		if st.Hot < hotRounds {
			continue
		}
		if pp := byNode[st.ID]; pp != nil {
			evs = append(evs, eviction{node: st.ID, pod: pendingName(pp)})
		}
	}
	return evs
}

func pendingName(pp *placedPod) string { return pp.pending.req.Name }

// serviceThreads is the declared thread count of a service pod, matching
// lcservice.DefaultConfigFor (workers + background workers).
func serviceThreads(store string) int {
	switch store {
	case "redis":
		return 2
	case "memcached":
		return 4
	default:
		return 6
	}
}

// clusterTelemetry pre-resolves the control plane's metric handles.
type clusterTelemetry struct {
	set              *telemetry.Set
	placedGuaranteed *telemetry.Counter
	placedBestEffort *telemetry.Counter
	evictions        *telemetry.Counter
	requeues         *telemetry.Counter
	failed           *telemetry.Counter
	completed        *telemetry.Counter
	nodeVPI          map[int]*telemetry.Gauge
}

func (t *clusterTelemetry) resolve(set *telemetry.Set) {
	if set == nil {
		return
	}
	t.set = set
	reg := set.Registry
	t.placedGuaranteed = reg.Counter("cluster_pods_placed_total",
		"pods placed by the cluster scheduler", telemetry.L("qos", "guaranteed"))
	t.placedBestEffort = reg.Counter("cluster_pods_placed_total",
		"pods placed by the cluster scheduler", telemetry.L("qos", "besteffort"))
	t.evictions = reg.Counter("cluster_evictions_total",
		"best-effort pods evicted by the reconciler")
	t.requeues = reg.Counter("cluster_requeues_total",
		"evicted pods returned to the pending queue")
	t.failed = reg.Counter("cluster_failed_placements_total",
		"pods dropped after exhausting placement retries")
	t.completed = reg.Counter("cluster_pods_completed_total",
		"finite best-effort pods that drained their work")
	t.nodeVPI = map[int]*telemetry.Gauge{}
}

func (t *clusterTelemetry) inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (t *clusterTelemetry) gaugeVPI(node int, v float64) {
	if t.set == nil {
		return
	}
	g, ok := t.nodeVPI[node]
	if !ok {
		g = t.set.Registry.Gauge("cluster_node_smoothed_vpi",
			"mean smoothed VPI across a node's reserved CPUs",
			telemetry.L("node", fmt.Sprint(node)))
		t.nodeVPI[node] = g
	}
	g.Set(v)
}

// Render prints the run as a table plus summary lines.
func (r *Result) Render() string {
	var b strings.Builder
	title := r.Spec.Name
	if title == "" {
		title = "cluster"
	}
	tb := trace.NewTable(fmt.Sprintf("%s: %d nodes x %d cores, %s placement, %d rounds",
		title, r.Spec.Nodes, r.Spec.CoresPerNode, r.Spec.placer(), r.Rounds),
		"service", "workload", "node", "queries", "mean us", "p99 us", "SLO viol")
	for _, s := range r.Services {
		tb.AddRow(s.Name, "workload-"+s.Workload, s.Node, s.Queries,
			fmt.Sprintf("%.1f", s.Summary.Mean/1e3),
			fmt.Sprintf("%.1f", s.Summary.P99/1e3),
			fmt.Sprintf("%.2f%%", 100*s.SLOViolations))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ncluster utilization: %.1f%%   batch pods completed: %d (placed %d)\n",
		100*r.ClusterUtil, r.BatchCompleted, r.PlacedBatch)
	fmt.Fprintf(&b, "reconciler: %d evictions, %d requeues, %d failed placements, %d pinned pods (peak node VPI %.1f)\n",
		r.Evictions, r.Requeues, r.FailedPlacements, r.PinnedPods, r.PeakSmoothedVPI)
	return b.String()
}
