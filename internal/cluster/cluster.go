// Package cluster is the multi-node control plane over kubelite nodes:
// the paper's §8 future work (cluster-manager integration) lifted from
// one machine to a fleet. Every node is a full simulated machine with a
// kernel, a cgroup filesystem, a Holmes daemon and a kubelite agent; the
// control plane coordinates them in heartbeat rounds —
//
//   - a node registry holds each node's latest telemetry snapshot
//     (per-CPU VPI, reserved-pool size, LC utilization, batch occupancy);
//   - a placement scheduler scores candidate nodes per pod: the
//     VPI-aware policy spreads Guaranteed pods away from interfered
//     nodes and backfills BestEffort pods onto lendable SMT capacity,
//     with plain bin-packing as the baseline;
//   - a reconciler evicts BestEffort pods off nodes whose smoothed VPI
//     stays above threshold, rescheduling them with bounded retries and
//     exponential backoff so draining cannot livelock.
//
// Between rounds the nodes are mutually independent, so the cluster
// advances them on the internal/runner pool; with per-node seeds derived
// via rng.DeriveSeed the run is byte-identical at any parallelism.
package cluster

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/holmes-colocation/holmes/internal/batch"
	"github.com/holmes-colocation/holmes/internal/faults"
	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/runner"
	"github.com/holmes-colocation/holmes/internal/stats"
	"github.com/holmes-colocation/holmes/internal/telemetry"
	"github.com/holmes-colocation/holmes/internal/trace"
)

// RunOptions are the execution knobs that are not part of the workload
// description: Workers bounds node-simulation parallelism (<= 1 serial;
// results identical either way) and Telemetry, when non-nil, receives
// every node's daemon metrics plus the control plane's own counters.
type RunOptions struct {
	Workers   int
	Telemetry *telemetry.Set
	// Obs, when non-nil, records the run's observability artifacts: pod
	// lifecycle and node fault spans on the control-plane recorder, each
	// node daemon's decision-chain spans on its per-node recorder, fleet
	// time-series rollups, and the burn-rate alert log. Recording is pure
	// observation — attaching a plane never changes what the run computes
	// (the burn-rate engine itself always runs; it feeds the reconciler).
	Obs *obs.Plane
	// FullRescan forces the control plane onto its naive O(nodes) paths:
	// reference full-rescan placement, unconditional reconcile scans, and
	// full machine fidelity regardless of the spec's LoD setting. The
	// honest baseline for the perfbench scaling scenario and the
	// differential tests — results are identical either way.
	FullRescan bool
}

// maxPlaceRetries bounds how many rounds a pending pod is retried when no
// node fits before it is dropped and counted as a failed placement. Waiting
// for capacity is normal (pods queue while earlier ones drain), so the
// bound is generous; it exists to stop a pod the fleet can never fit from
// circulating forever.
const maxPlaceRetries = 400

// maxBackoffRounds caps the reconciler's exponential requeue backoff.
const maxBackoffRounds = 8

// trendAlpha is the per-round EWMA weight for a node's VPI trend.
const trendAlpha = 0.3

// lodQuietVPI is the VPI-trend ceiling below which an unoccupied,
// unsuspected node counts as quiescent for the level-of-detail policy. A
// node that was recently hot keeps full fidelity until its trend decays
// under this (about nine rounds from the eviction threshold at
// trendAlpha), so the fast-forward path never hides a cooling node.
const lodQuietVPI = 1.0

// debugVPI prints per-round node VPI trends (development aid).
var debugVPI = os.Getenv("HOLMES_CLUSTER_DEBUG") != ""

// pendingPod is one queue entry awaiting placement.
type pendingPod struct {
	req                        PodRequest
	svc                        *ServiceSpec    // non-nil for Guaranteed service pods
	rep                        *trafficReplica // non-nil for replicated-service pods
	kind                       batch.Kind
	containers, threads, units int
	retries                    int // placement attempts that found no node
	evictions                  int // times the reconciler has evicted this pod
	notBefore                  int // earliest round for the next attempt
}

// placedPod tracks a running BestEffort pod for the reconciler.
type placedPod struct {
	pending *pendingPod
	node    int
	seq     int // placement sequence, for youngest-first eviction
}

// ServiceResult is one Guaranteed service's measured outcome.
type ServiceResult struct {
	Name     string
	Store    string
	Workload string
	Node     int
	Queries  int64
	Summary  stats.Summary
	// SLOViolations is the fraction of measured queries over the SLO.
	SLOViolations float64
	// Lost marks a service whose node died and that never found a new
	// home by run end; it contributes no latency numbers.
	Lost bool
}

// Result is a cluster run's outcome.
type Result struct {
	Spec     Spec
	Rounds   int
	Services []ServiceResult
	// MeanP99/WorstP99 aggregate the services' p99 latency (ns).
	MeanP99  float64
	WorstP99 float64
	// SLOViolationRatio is the query-weighted violation fraction.
	SLOViolationRatio float64
	// ClusterUtil is the mean node-wide busy fraction over the window.
	ClusterUtil float64
	// BatchCompleted counts finite BestEffort pods finished in-window.
	BatchCompleted int
	// PeakSmoothedVPI is the highest per-node VPI trend the registry held
	// during the measured window (reconciler diagnostics).
	PeakSmoothedVPI float64
	// Control-plane statistics (whole run, including warmup).
	PlacedBatch      int
	Evictions        int
	Requeues         int
	FailedPlacements int
	PinnedPods       int
	// Batch pod-stream conservation accounting (whole run): every admitted
	// pod is, at run end, completed, still running, still queued, or
	// dropped — BatchArrived == BatchDoneTotal + BatchRunning + BatchQueued
	// + BatchFailed. Unlike BatchCompleted, BatchDoneTotal counts warmup
	// completions too.
	BatchArrived   int
	BatchDoneTotal int
	BatchRunning   int
	BatchQueued    int
	BatchFailed    int
	// LoDSkips counts node-rounds the level-of-detail policy
	// fast-forwarded instead of simulating (0 under LoD "full").
	LoDSkips int
	// Fault and degradation statistics (all zero in fault-free runs).
	Crashes            int
	Reboots            int
	HeartbeatsMissed   int
	SlowRounds         int
	NodesDied          int
	NodesRejoined      int
	CheckpointRequeues int
	ServiceFailovers   int
	FencedPods         int
	SafeModeEntries    int64
	RescanRepairs      int64
	// Burn-rate alerting outcome: page/ticket activations plus the full
	// deterministic transition log (identical at any worker count).
	PageAlerts   int
	TicketAlerts int
	Alerts       []obs.Alert
	// Traffic is the open-loop traffic plane's outcome (nil when the spec
	// has no topology).
	Traffic *TrafficResult
}

// TotalQueries returns the completed, measured queries summed over the
// run's non-lost services — the denominator behind SLOViolationRatio. A
// verdict derived from that ratio is only meaningful when this is large
// enough; with zero completed queries the ratio is vacuously 0.
func (r *Result) TotalQueries() int64 {
	var n int64
	for _, s := range r.Services {
		n += s.Queries
	}
	return n
}

// Run executes the cluster described by spec.
func Run(spec Spec, opt RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	placer, err := NewPlacer(spec.placer())
	if err != nil {
		return nil, err
	}
	kinds, err := spec.Batch.kinds()
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}

	hbNs := spec.heartbeatNs()
	warmupRounds, measureRounds := spec.rounds()
	totalRounds := warmupRounds + measureRounds

	var tel clusterTelemetry
	tel.resolve(opt.Telemetry)

	// The burn-rate engine always runs: its alert stream modulates the
	// reconciler, so it is control-plane behavior, not optional recording.
	// The tracer and rollup are the recording side and no-op without a
	// plane.
	burn := newBurnEngine(spec, totalRounds)
	tracer := newRunTracer(opt.Obs, hbNs)
	rollup := newFleetRollup(opt.Obs, hbNs)
	// The traffic plane (nil without a topology): arrival processes, the
	// load-balancer tier and the autoscalers, all driven serially from
	// this loop.
	tc, err := newTrafficController(spec, tracer, opt.Obs, hbNs, warmupRounds)
	if err != nil {
		return nil, err
	}
	prevQ := make([]int64, spec.Nodes)
	prevBad := make([]int64, spec.Nodes)

	// The node-fault schedule, fixed up front from per-node seed streams:
	// what happens to node i never depends on fleet size changes above i
	// or on the advance parallelism.
	var schedule [][]faults.RoundFault
	if spec.Chaos != nil && spec.Chaos.Nodes.Enabled() {
		schedule = spec.Chaos.Nodes.Schedule(spec.Seed, spec.Nodes, totalRounds)
	}
	degrade := !spec.DisableDegradation
	var fd *failureDetector
	if degrade {
		fd = newFailureDetector(spec.Nodes,
			float64(spec.suspectRounds()), float64(spec.deadRounds()))
	}
	down := make([]bool, spec.Nodes)    // crashed, simulation frozen
	rebootAt := make([]int, spec.Nodes) // round the node comes back (-1: never)
	gen := make([]int, spec.Nodes)      // boot generation per node slot

	// Boot the fleet. Nodes are independent, so boot fans out on the
	// worker pool; each node's seed derives from (spec.Seed, node ID).
	nodes := make([]*Node, spec.Nodes)
	boots := make([]func() error, spec.Nodes)
	for i := range nodes {
		i := i
		boots[i] = func() error {
			n, err := bootNode(spec, i, 0, opt.Telemetry, opt.Obs.NodeRecorder(i))
			if err != nil {
				return err
			}
			nodes[i] = n
			return nil
		}
	}
	if err := runner.Run(workers, boots); err != nil {
		return nil, err
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Stop()
			}
		}
	}()

	// The registry: one state per node, refreshed each round. All
	// mutations go through reg so its shard aggregates stay exact; states
	// aliases the backing slice for the read-only passes (rollups,
	// traffic reconciliation, reference full-rescan placement).
	reg := newRegistry(spec.Nodes, defaultShardSize)
	states := reg.States()
	for i := range states {
		reg.Reset(i, NodeState{ID: i, HB: nodes[i].Heartbeat()})
	}

	// Level-of-detail: with LoD "auto" (and no node-fault schedule), a
	// node that is unoccupied, not hot, not suspect and VPI-quiet skips
	// both its machine advance and its heartbeat this round. Its registry
	// entry freezes, the failure detector is told the silence is policy,
	// and the skipped simulated time accrues as lag that is paid back —
	// on the cheap idle fast-forward path — only if placement later
	// targets the node. Lag never needs settling at run end: a node that
	// stayed quiescent to the finish contributes exactly what it would
	// have simulated — zero busy time, zero queries, zero completions.
	lodAuto := spec.lodAuto() && !opt.FullRescan
	var lagNs []int64
	var lodSkip []bool
	if lodAuto {
		lagNs = make([]int64, spec.Nodes)
		lodSkip = make([]bool, spec.Nodes)
	}
	catchUp := func(i int) {
		if lodAuto && lagNs[i] > 0 {
			nodes[i].Advance(lagNs[i])
			lagNs[i] = 0
		}
	}

	// Pending queue: services first (placed in round 0), then the batch
	// stream's arrivals.
	var queue []*pendingPod
	for i := range spec.Services {
		ss := spec.Services[i]
		queue = append(queue, &pendingPod{
			req: PodRequest{Name: ss.Name, Guaranteed: true, Threads: serviceThreads(ss.Store)},
			svc: &ss,
		})
		tracer.admit(ss.Name, 0)
	}
	for _, p := range tc.initialPods() {
		queue = append(queue, p)
		tracer.admit(p.req.Name, 0)
	}
	containers, threads, units := spec.Batch.podSpecShape()
	arrived := 0
	res := &Result{Spec: spec}
	serviceNode := map[string]int{}
	placed := map[string]*placedPod{}
	placeSeq := 0

	// nodeLost reschedules everything the control plane had booked on a
	// node it now considers gone: BestEffort pods resume elsewhere from
	// their last heartbeat checkpoint, services fail over to a fresh
	// instance. Only called with degradation enabled.
	nodeLost := func(i, r int) {
		var names []string
		for name, pp := range placed {
			if pp.node == i {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			pp := placed[name]
			delete(placed, name)
			tracer.requeue(name, r, "node-lost")
			p := pp.pending
			done := 0
			for _, prog := range states[i].HB.Progress {
				if prog.Name == name {
					done = prog.Units
				}
			}
			// Work since the last heartbeat is lost — that is the price of
			// checkpointing at heartbeat granularity.
			threadsPer := p.containers * p.threads
			remaining := threadsPer*p.units - done
			p.units = (remaining + threadsPer - 1) / threadsPer
			if p.units < 1 {
				p.units = 1
			}
			p.notBefore = r + 1
			p.retries = 0
			queue = append(queue, p)
			res.CheckpointRequeues++
		}
		var svcs []string
		for name, idx := range serviceNode {
			if idx == i {
				svcs = append(svcs, name)
			}
		}
		sort.Strings(svcs)
		for _, name := range svcs {
			delete(serviceNode, name)
			tracer.requeue(name, r, "failover")
			for si := range spec.Services {
				if spec.Services[si].Name != name {
					continue
				}
				ss := spec.Services[si]
				queue = append(queue, &pendingPod{
					req: PodRequest{Name: ss.Name, Guaranteed: true,
						Threads: serviceThreads(ss.Store)},
					svc:       &ss,
					notBefore: r + 1,
				})
			}
			res.ServiceFailovers++
		}
		// Replicas on the lost node: their in-flight requests are gone
		// (accounted as lost), and the traffic plane queues replacements
		// up to each service's minimum.
		for _, p := range tc.nodeLost(i, r) {
			p.notBefore = r + 1
			queue = append(queue, p)
			tracer.admit(p.req.Name, r)
		}
	}

	for r := 0; r < totalRounds; r++ {
		// Reboots due this round, then freshly scheduled crashes.
		for i := range nodes {
			if !down[i] || rebootAt[i] != r {
				continue
			}
			// Harvest the dead incarnation's degradation counters before
			// it is replaced, then boot a fresh machine under a
			// generation-salted seed.
			st := nodes[i].DaemonStats()
			res.SafeModeEntries += st.SafeModeEntries
			res.RescanRepairs += st.RescanRepairs
			gen[i]++
			nn, err := bootNode(spec, i, gen[i], opt.Telemetry, opt.Obs.NodeRecorder(i))
			if err != nil {
				return nil, err
			}
			nodes[i] = nn
			down[i] = false
			rebootAt[i] = -1
			res.Reboots++
			tracer.nodeReboot(i, r)
			// The fresh incarnation's SLI counters restart from zero.
			prevQ[i], prevBad[i] = 0, 0
			if degrade {
				// Everything booked on the old incarnation is gone:
				// reschedule from checkpoints, fail services over.
				nodeLost(i, r)
				fd.reset(i)
			}
			if states[i].Dead {
				res.NodesRejoined++
			}
			reg.Reset(i, NodeState{ID: i, HB: nn.Heartbeat()})
		}
		if schedule != nil {
			for i := range nodes {
				f := schedule[i][r]
				if !f.Crash || down[i] {
					continue
				}
				if spec.Chaos.Nodes.SpareServiceNodes && len(nodes[i].services) > 0 {
					continue
				}
				down[i] = true
				res.Crashes++
				tracer.nodeCrash(i, r)
				if f.DownRounds > 0 {
					rebootAt[i] = r + f.DownRounds
				} else {
					rebootAt[i] = -1
				}
			}
		}

		if r == warmupRounds {
			for i, n := range nodes {
				if !down[i] {
					n.BeginMeasurement()
				}
			}
		}

		// Batch arrivals for this round (PodsPerRound <= 0: all at once).
		perRound := spec.Batch.PodsPerRound
		if perRound <= 0 {
			perRound = spec.Batch.Pods
		}
		for a := 0; a < perRound && arrived < spec.Batch.Pods; a++ {
			name := fmt.Sprintf("batch-%03d", arrived)
			queue = append(queue, &pendingPod{
				req:        PodRequest{Name: name, Threads: containers * threads},
				kind:       kinds[arrived%len(kinds)],
				containers: containers,
				threads:    threads,
				units:      units,
			})
			tracer.admit(name, r)
			arrived++
		}

		// Placement pass, in queue order against the current registry.
		// Decisions route through the sharded fast path unless FullRescan
		// pins the reference scan; both answer identically.
		place := func(req PodRequest) int {
			if !opt.FullRescan {
				if rp, ok := placer.(registryPlacer); ok {
					return rp.PlaceReg(reg, req)
				}
			}
			return placer.Place(states, req)
		}
		couldFit := func(req PodRequest) bool {
			if !opt.FullRescan {
				return reg.AnyNodeCouldFit(req)
			}
			return anyNodeCouldFit(states, req)
		}
		var waiting []*pendingPod
		for _, p := range queue {
			if p.notBefore > r {
				waiting = append(waiting, p)
				continue
			}
			target := place(p.req)
			if target < 0 {
				if (p.svc != nil || p.rep != nil) && !couldFit(p.req) {
					return nil, fmt.Errorf("cluster: no node fits service %s", p.req.Name)
				}
				p.retries++
				if p.retries > maxPlaceRetries {
					if p.svc != nil {
						return nil, fmt.Errorf("cluster: service %s unplaced after %d rounds",
							p.req.Name, maxPlaceRetries)
					}
					if p.rep != nil {
						tc.placementFailed(p)
					} else {
						res.BatchFailed++
					}
					res.FailedPlacements++
					tel.inc(tel.failed)
					continue
				}
				p.notBefore = r + 1
				waiting = append(waiting, p)
				continue
			}
			// A fast-forwarded target first pays back its skipped rounds so
			// the pod lands on a machine aligned with fleet time.
			catchUp(target)
			if p.rep != nil {
				if err := tc.place(p, target, nodes[target]); err != nil {
					return nil, err
				}
				reg.Update(target, func(st *NodeState) {
					st.HB.ServicePods++
					st.HB.ServiceThreads += p.req.Threads
				})
				tel.inc(tel.placedGuaranteed)
				tracer.servicePlace(p.req.Name, r, target)
			} else if p.svc != nil {
				if err := nodes[target].PlaceService(*p.svc); err != nil {
					return nil, err
				}
				serviceNode[p.svc.Name] = target
				reg.Update(target, func(st *NodeState) {
					st.HB.ServicePods++
					st.HB.ServiceThreads += p.req.Threads
				})
				tel.inc(tel.placedGuaranteed)
				tracer.servicePlace(p.svc.Name, r, target)
			} else {
				if err := nodes[target].PlaceBatch(p.req.Name, p.kind, p.containers, p.threads, p.units); err != nil {
					return nil, err
				}
				res.PlacedBatch++
				placed[p.req.Name] = &placedPod{pending: p, node: target, seq: placeSeq}
				placeSeq++
				reg.Update(target, func(st *NodeState) {
					st.HB.BatchPods++
					st.HB.BatchThreads += p.req.Threads
				})
				tel.inc(tel.placedBestEffort)
				tracer.place(p.req.Name, r, target)
			}
		}
		queue = waiting

		// Open-loop arrivals for this round, routed through the balancer
		// tier. Runs after placement (fresh replicas serve immediately) and
		// before the advance, so every request lands inside the round.
		tc.inject(r)

		// Decide fidelity for the round, after placement so fresh targets
		// count as occupied. The check reads only the registry entry and
		// the node's pod census, both serial state: the skip set is
		// deterministic at any worker count.
		if lodAuto {
			for i := range nodes {
				lodSkip[i] = false
				if down[i] {
					continue
				}
				st := &states[i]
				if !st.Dead && !st.Suspect && st.Hot == 0 &&
					st.TrendVPI < lodQuietVPI && !nodes[i].Occupied() {
					lodSkip[i] = true
					lagNs[i] += hbNs
					res.LoDSkips++
				}
			}
		}

		// Advance every live node one heartbeat period, fanned out on the
		// worker pool. Nodes share nothing mid-round, so the outcome is
		// identical at any worker count. Crashed nodes are frozen; slow
		// nodes make proportionally less simulated progress (straggler
		// semantics without breaking the lockstep rounds); fast-forwarded
		// nodes bank the round as lag instead of simulating it.
		var tasks []func() error
		for i := range nodes {
			if down[i] || (lodAuto && lodSkip[i]) {
				continue
			}
			n := nodes[i]
			dur := hbNs
			if schedule != nil {
				if f := schedule[i][r]; f.Slow > 1 {
					dur = int64(float64(hbNs) / f.Slow)
					res.SlowRounds++
				}
			}
			tasks = append(tasks, func() error { n.Advance(dur); return nil })
		}
		if err := runner.Run(workers, tasks); err != nil {
			return nil, err
		}

		// Reap finished pods, then refresh the registry from heartbeats.
		// Fast-forwarded nodes are unoccupied by construction — nothing to
		// reap, and no heartbeat to deliver below.
		for i, n := range nodes {
			if down[i] || (lodAuto && lodSkip[i]) {
				continue
			}
			done, err := n.ReapFinished()
			if err != nil {
				return nil, err
			}
			for _, name := range done {
				delete(placed, name)
				res.BatchDoneTotal++
				if r >= warmupRounds {
					res.BatchCompleted++
				}
				tel.inc(tel.completed)
				tracer.complete(name, r)
			}
		}
		var roundGoodQ, roundBadQ int64
		for i, n := range nodes {
			hbLost := schedule != nil && schedule[i][r].LoseHeartbeat
			if down[i] || hbLost {
				// No heartbeat this round: the registry keeps its stale
				// entry and the failure detector accrues suspicion.
				if !down[i] {
					res.HeartbeatsMissed++
				}
				if degrade {
					fd.observe(i, false)
					died := false
					reg.Update(i, func(st *NodeState) {
						st.MissedHB++
						if !st.Dead {
							st.Suspect = fd.suspect(i)
							if fd.dead(i) {
								st.Dead = true
								st.Suspect = true
								died = true
							}
						}
					})
					if died {
						res.NodesDied++
						nodeLost(i, r)
					}
				}
				continue
			}
			if lodAuto && lodSkip[i] {
				// Fast-forwarded: the silence is the control plane's own
				// policy, so the failure detector treats it as a delivered
				// heartbeat and the registry entry stays frozen.
				if degrade {
					fd.observe(i, true)
				}
				continue
			}
			if degrade && states[i].Dead {
				// A node declared dead is talking again — a false positive
				// (the schedule lost its heartbeats, the node kept going).
				// Its pods were already re-placed elsewhere; fence the
				// zombies before readmitting it to the registry.
				keep := map[string]bool{}
				for name, pp := range placed {
					if pp.node == i {
						keep[name] = true
					}
				}
				fenced, err := n.Fence(keep, func(svc string) bool {
					idx, ok := serviceNode[svc]
					return (ok && idx == i) || tc.keepsReplica(svc, i)
				})
				if err != nil {
					return nil, err
				}
				res.FencedPods += fenced
				res.NodesRejoined++
				fd.reset(i)
				reg.Reset(i, NodeState{ID: i})
			}
			if degrade {
				fd.observe(i, true)
			}
			hb := n.Heartbeat()
			// Latency SLI deltas for the burn-rate engine. The cumulative
			// counters restart on measurement reset and reboot, so deltas
			// clamp at zero rather than going negative.
			dq, db := hb.Queries-prevQ[i], hb.SLOBad-prevBad[i]
			if dq < 0 {
				dq = 0
			}
			if db < 0 {
				db = 0
			}
			if db > dq {
				db = dq
			}
			prevQ[i], prevBad[i] = hb.Queries, hb.SLOBad
			roundGoodQ += dq - db
			roundBadQ += db
			// Trend smooths the heartbeat VPI one more time at the round
			// scale: a single bursty heartbeat cannot arm the reconciler,
			// only a node that keeps reporting interference.
			reg.Update(i, func(st *NodeState) {
				if degrade {
					st.MissedHB = 0
					st.Suspect = false
				}
				st.TrendVPI += trendAlpha * (hb.SmoothedVPI - st.TrendVPI)
				if st.TrendVPI >= spec.evictVPI() {
					st.Hot++
				} else {
					st.Hot = 0
				}
				st.HB = hb
			})
			if debugVPI {
				fmt.Printf("round %d node %d hbVPI %.1f trend %.1f hot %d\n",
					r, i, hb.SmoothedVPI, states[i].TrendVPI, states[i].Hot)
			}
			tel.gaugeVPI(i, hb.SmoothedVPI)
			if r >= warmupRounds && states[i].TrendVPI > res.PeakSmoothedVPI {
				res.PeakSmoothedVPI = states[i].TrendVPI
			}
		}

		// Feed the fleet SLO engine: latency from the query deltas,
		// availability from node-rounds lost to crashes or death verdicts.
		// Both SLIs are deterministic functions of the round's state, so
		// the alert stream is identical at any worker count.
		roundNs := int64(r) * hbNs
		var nodesBad int64
		for i := range nodes {
			if down[i] || states[i].Dead {
				nodesBad++
			}
		}
		transitions := burn.Observe("latency", r, roundNs, roundGoodQ, roundBadQ)
		transitions = append(transitions,
			burn.Observe("availability", r, roundNs, int64(spec.Nodes)-nodesBad, nodesBad)...)

		// Traffic-plane reconciliation: balancer health and queue estimates,
		// drained-replica retirement, the resilience round step, the
		// autoscaler decisions. Scale-ups enter the placement queue for
		// next round; requests-SLO transitions publish with the round's
		// other alerts.
		pods, reqAlerts := tc.postRound(r, nodes, states, down, burn)
		transitions = append(transitions, reqAlerts...)
		publishAlerts(opt.Telemetry, opt.Obs, transitions)
		rollup.record(r, states, down, roundGoodQ, roundBadQ)
		for _, p := range pods {
			p.notBefore = r + 1
			queue = append(queue, p)
			tracer.admit(p.req.Name, r)
		}

		// Reconcile: drain one BestEffort pod per persistently hot node.
		// While a page-severity alert is active the fleet is burning error
		// budget too fast for patience: the hot-streak requirement drops
		// to a single round so interfered nodes drain immediately.
		hot := spec.hotRounds()
		if burn.Paging() && hot > 1 {
			hot = 1
		}
		// The registry's incremental hot count gives the reconciler an O(1)
		// early-out: no hot node anywhere, nothing to scan or sort. (The
		// naive baseline scans unconditionally, like the pre-sharded loop.)
		if !opt.FullRescan && reg.HotNodes() == 0 {
			continue
		}
		for _, ev := range reconcileDecisions(states, placed, hot, spec.maxEvictions()) {
			if down[ev.node] || states[ev.node].Dead {
				// The eviction RPC cannot reach the node; the detector (or
				// a reboot) will deal with its pods.
				continue
			}
			pp := placed[ev.pod]
			if !nodes[ev.node].HasBatch(ev.pod) {
				// Stale booking: the node rebooted under the control
				// plane's feet (degradation off) and the pod is gone.
				delete(placed, ev.pod)
				continue
			}
			done := nodes[ev.node].BatchUnitsDone(ev.pod)
			if err := nodes[ev.node].EvictBatch(ev.pod); err != nil {
				return nil, err
			}
			tracer.evict(ev.pod, r, ev.node, states[ev.node].Hot, states[ev.node].TrendVPI)
			// Re-arm: the node must stay hot for another full streak before
			// its next eviction, so draining is paced, not a stampede.
			reg.Update(ev.node, func(st *NodeState) { st.Hot = 0 })
			delete(placed, ev.pod)
			res.Evictions++
			tel.inc(tel.evictions)
			p := pp.pending
			// Checkpoint: the pod resumes from the work it already finished,
			// so an eviction costs rescheduling latency, not lost cycles.
			threads := p.containers * p.threads
			remaining := threads*p.units - done
			p.units = (remaining + threads - 1) / threads
			if p.units < 1 {
				p.units = 1
			}
			p.evictions++
			p.notBefore = r + 1 + requeueBackoff(p.evictions)
			p.retries = 0
			queue = append(queue, p)
			res.Requeues++
			tel.inc(tel.requeues)
		}
	}

	// Collect. Service order follows the spec for stable rendering.
	res.Rounds = totalRounds
	windowNs := int64(measureRounds) * hbNs
	slo := spec.sloNs()
	var violations, queries float64
	measuredServices := 0
	for _, ss := range spec.Services {
		idx, booked := serviceNode[ss.Name]
		var s *nodeService
		if booked {
			s = nodes[idx].services[ss.Name]
		}
		if s == nil {
			// The service's node died and no failover landed before the
			// run ended: worst-case outcome, reported as lost.
			res.Services = append(res.Services, ServiceResult{
				Name:     ss.Name,
				Store:    ss.Store,
				Workload: defaultStr(ss.Workload, "a"),
				Node:     -1,
				Lost:     true,
			})
			continue
		}
		lat := s.svc.Latencies()
		sr := ServiceResult{
			Name:          ss.Name,
			Store:         ss.Store,
			Workload:      defaultStr(ss.Workload, "a"),
			Node:          idx,
			Queries:       lat.Count(),
			Summary:       lat.Summarize(),
			SLOViolations: lat.FractionAbove(slo),
		}
		res.Services = append(res.Services, sr)
		measuredServices++
		res.MeanP99 += sr.Summary.P99
		if sr.Summary.P99 > res.WorstP99 {
			res.WorstP99 = sr.Summary.P99
		}
		violations += sr.SLOViolations * float64(sr.Queries)
		queries += float64(sr.Queries)
	}
	if measuredServices > 0 {
		res.MeanP99 /= float64(measuredServices)
	}
	if queries > 0 {
		res.SLOViolationRatio = violations / queries
	}
	for _, n := range nodes {
		res.ClusterUtil += n.Utilization(windowNs)
	}
	res.ClusterUtil /= float64(len(nodes))
	for _, pp := range placed {
		if pp.pending.evictions >= spec.maxEvictions() {
			res.PinnedPods++
		}
	}
	// Conservation accounting: where every admitted batch pod ended up.
	res.BatchArrived = arrived
	res.BatchRunning = len(placed)
	for _, p := range queue {
		if p.svc == nil && p.rep == nil {
			res.BatchQueued++
		}
	}
	// Fleet-wide degradation counters from the surviving incarnations
	// (crashed-and-replaced ones were harvested at reboot).
	for _, n := range nodes {
		st := n.DaemonStats()
		res.SafeModeEntries += st.SafeModeEntries
		res.RescanRepairs += st.RescanRepairs
	}
	res.PageAlerts = burn.Pages()
	res.TicketAlerts = burn.Tickets()
	res.Alerts = burn.Alerts()
	tc.collect(res, nodes, down)
	return res, nil
}

// anyNodeCouldFit reports whether the request would fit some live node if
// that node were empty — distinguishing "can never be placed" (a spec
// error) from "no capacity right now" (retry next round). Dead nodes
// don't count: a fleet whose only capacity-capable nodes are permanently
// dead can never place the pod, and must surface that instead of retrying
// forever.
func anyNodeCouldFit(states []NodeState, req PodRequest) bool {
	for _, st := range states {
		if !st.Dead && req.Threads <= st.HB.CapacityThreads {
			return true
		}
	}
	return false
}

// requeueBackoff is how many rounds an evicted pod waits before its next
// placement attempt: exponential in its eviction count, capped so a
// pinning-bound pod cannot be delayed unboundedly. Eviction counts below
// one take the minimum backoff — shifting by a negative amount panics.
func requeueBackoff(evictions int) int {
	if evictions < 1 {
		return 1
	}
	b := 1 << (evictions - 1)
	if b > maxBackoffRounds {
		b = maxBackoffRounds
	}
	return b
}

// eviction is one reconciler decision.
type eviction struct {
	node int
	pod  string
}

// reconcileDecisions returns the pods to evict this round: for every node
// hot for at least hotRounds consecutive heartbeats, the youngest
// still-evictable BestEffort pod (least sunk work). Pods already evicted
// maxEvictions times are pinned and never chosen again, which — together
// with the requeue backoff — bounds the reschedule churn.
func reconcileDecisions(states []NodeState, placed map[string]*placedPod, hotRounds, maxEvictions int) []eviction {
	byNode := map[int]*placedPod{}
	names := make([]string, 0, len(placed))
	for name := range placed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pp := placed[name]
		if pp.pending.evictions >= maxEvictions {
			continue
		}
		if cur := byNode[pp.node]; cur == nil || pp.seq > cur.seq {
			byNode[pp.node] = pp
		}
	}
	var evs []eviction
	for _, st := range states {
		if st.Hot < hotRounds {
			continue
		}
		if pp := byNode[st.ID]; pp != nil {
			evs = append(evs, eviction{node: st.ID, pod: pendingName(pp)})
		}
	}
	return evs
}

func pendingName(pp *placedPod) string { return pp.pending.req.Name }

// serviceThreads is the declared thread count of a service pod, matching
// lcservice.DefaultConfigFor (workers + background workers).
func serviceThreads(store string) int {
	switch store {
	case "redis":
		return 2
	case "memcached":
		return 4
	default:
		return 6
	}
}

// clusterTelemetry pre-resolves the control plane's metric handles.
type clusterTelemetry struct {
	set              *telemetry.Set
	placedGuaranteed *telemetry.Counter
	placedBestEffort *telemetry.Counter
	evictions        *telemetry.Counter
	requeues         *telemetry.Counter
	failed           *telemetry.Counter
	completed        *telemetry.Counter
	nodeVPI          map[int]*telemetry.Gauge
}

func (t *clusterTelemetry) resolve(set *telemetry.Set) {
	if set == nil {
		return
	}
	t.set = set
	reg := set.Registry
	t.placedGuaranteed = reg.Counter("cluster_pods_placed_total",
		"pods placed by the cluster scheduler", telemetry.L("qos", "guaranteed"))
	t.placedBestEffort = reg.Counter("cluster_pods_placed_total",
		"pods placed by the cluster scheduler", telemetry.L("qos", "besteffort"))
	t.evictions = reg.Counter("cluster_evictions_total",
		"best-effort pods evicted by the reconciler")
	t.requeues = reg.Counter("cluster_requeues_total",
		"evicted pods returned to the pending queue")
	t.failed = reg.Counter("cluster_failed_placements_total",
		"pods dropped after exhausting placement retries")
	t.completed = reg.Counter("cluster_pods_completed_total",
		"finite best-effort pods that drained their work")
	t.nodeVPI = map[int]*telemetry.Gauge{}
}

func (t *clusterTelemetry) inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (t *clusterTelemetry) gaugeVPI(node int, v float64) {
	if t.set == nil {
		return
	}
	g, ok := t.nodeVPI[node]
	if !ok {
		g = t.set.Registry.Gauge("cluster_node_smoothed_vpi",
			"mean smoothed VPI across a node's reserved CPUs",
			telemetry.L("node", fmt.Sprint(node)))
		t.nodeVPI[node] = g
	}
	g.Set(v)
}

// Render prints the run as a table plus summary lines.
func (r *Result) Render() string {
	var b strings.Builder
	title := r.Spec.Name
	if title == "" {
		title = "cluster"
	}
	tb := trace.NewTable(fmt.Sprintf("%s: %d nodes x %d cores, %s placement, %d rounds",
		title, r.Spec.Nodes, r.Spec.CoresPerNode, r.Spec.placer(), r.Rounds),
		"service", "workload", "node", "queries", "mean us", "p99 us", "SLO viol")
	for _, s := range r.Services {
		if s.Lost {
			tb.AddRow(s.Name, "workload-"+s.Workload, "lost", 0, "-", "-", "-")
			continue
		}
		if !s.Summary.Valid {
			// A live service that measured nothing (every request lost to
			// faults) has no latency distribution; printing the zero-valued
			// Summary would read as perfect latency and 0% violations.
			tb.AddRow(s.Name, "workload-"+s.Workload, s.Node, 0, "n/a", "n/a", "n/a")
			continue
		}
		tb.AddRow(s.Name, "workload-"+s.Workload, s.Node, s.Queries,
			fmt.Sprintf("%.1f", s.Summary.Mean/1e3),
			fmt.Sprintf("%.1f", s.Summary.P99/1e3),
			fmt.Sprintf("%.2f%%", 100*s.SLOViolations))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ncluster utilization: %.1f%%   batch pods completed: %d (placed %d)\n",
		100*r.ClusterUtil, r.BatchCompleted, r.PlacedBatch)
	fmt.Fprintf(&b, "reconciler: %d evictions, %d requeues, %d failed placements, %d pinned pods (peak node VPI %.1f)\n",
		r.Evictions, r.Requeues, r.FailedPlacements, r.PinnedPods, r.PeakSmoothedVPI)
	if r.Spec.LoD != "" {
		fmt.Fprintf(&b, "fidelity: lod=%s, %d node-rounds fast-forwarded of %d\n",
			r.Spec.LoD, r.LoDSkips, r.Rounds*r.Spec.Nodes)
	}
	if r.Traffic != nil {
		r.Traffic.render(&b)
	}
	fmt.Fprintf(&b, "alerts: %d page, %d ticket burn-rate activations\n",
		r.PageAlerts, r.TicketAlerts)
	for _, a := range r.Alerts {
		if a.Severity == "page" {
			fmt.Fprintf(&b, "  %s\n", a.String())
		}
	}
	if r.Spec.Chaos != nil {
		fmt.Fprintf(&b, "chaos: %d crashes (%d reboots), %d heartbeats lost, %d slow rounds; detector: %d declared dead, %d rejoined\n",
			r.Crashes, r.Reboots, r.HeartbeatsMissed, r.SlowRounds, r.NodesDied, r.NodesRejoined)
		fmt.Fprintf(&b, "recovery: %d checkpoint requeues, %d service failovers, %d fenced pods; safe-mode entries %d, rescan repairs %d\n",
			r.CheckpointRequeues, r.ServiceFailovers, r.FencedPods, r.SafeModeEntries, r.RescanRepairs)
	}
	return b.String()
}
