package cluster

import (
	"math"
	"sort"
)

// defaultShardSize is the node-ID range one registry shard covers. Shards
// exist for cost, not semantics: every aggregate and every placement
// decision is defined over the whole fleet, and the differential tests pin
// that any shard size (including 1 and "whole fleet") produces identical
// decisions.
const defaultShardSize = 32

// Registry is the control plane's sharded node-state store. The naive
// registry was a flat []NodeState that every placement decision and every
// round-level question ("is anything hot?", "could this pod ever fit?")
// answered by rescanning the fleet; at 256-1024 nodes with tens of
// thousands of pods those rescans dominate the round loop. The sharded
// registry partitions the fleet by node-ID range and keeps two kinds of
// derived state per shard:
//
//   - incremental aggregates (free-thread totals, hot/suspect/dead node
//     counts) maintained by delta on every mutation — a delivered
//     heartbeat, a placement booking, a detector verdict — so fleet-wide
//     questions are O(shards), not O(nodes);
//   - lazily rebuilt bounds and score orders (max free threads, max
//     capacity, min VPI trend, per-QoS candidate orders for the scoring
//     placer), recomputed only when a shard was actually touched since
//     last read. With the level-of-detail policy skipping quiescent
//     nodes' heartbeats, most shards stay clean for most rounds.
//
// All mutation goes through Reset/Update so the deltas cannot drift from
// the states; TestRegistryAggregatesDifferential recomputes everything
// from scratch after every scripted chaos round and asserts equality.
type Registry struct {
	states []NodeState
	shards []shard

	// Fleet-wide delta-maintained aggregates (sums of the shard ones).
	freeThreads int
	hot         int
	suspect     int
	dead        int
}

// shard is one node-ID range's derived state.
type shard struct {
	lo, hi int // node-ID range [lo, hi)

	// Delta-maintained on every Reset/Update.
	freeThreads int // sum of free threads over non-dead nodes
	hot         int // nodes with Hot > 0
	suspect     int // nodes with Suspect set
	dead        int // nodes with Dead set

	// Lazily recomputed when aggDirty (cheap bounds).
	maxFree     int     // max free threads over non-dead nodes
	maxCapacity int     // max capacity over non-dead nodes
	minTrendVPI float64 // min VPI trend over non-dead nodes
	aggDirty    bool

	// Lazily rebuilt when orderDirty: node IDs sorted by (nodeScore, ID)
	// for each QoS class — the scoring placer's shard-local candidate
	// ranking (the walk-in-order equivalent of a min-score heap).
	gOrder, bOrder []int
	orderDirty     bool
}

// newRegistry builds a registry for n nodes partitioned into shards of
// shardSize IDs each (shardSize <= 0 uses the default).
func newRegistry(n, shardSize int) *Registry {
	if shardSize <= 0 {
		shardSize = defaultShardSize
	}
	g := &Registry{states: make([]NodeState, n)}
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		g.shards = append(g.shards, shard{lo: lo, hi: hi, aggDirty: true, orderDirty: true})
	}
	for i := range g.states {
		g.states[i].ID = i
	}
	return g
}

// States exposes the backing slice for read-only passes (rollups, the
// reconciler, reference full-rescan placement). Mutating an entry
// directly desynchronizes the aggregates — use Reset or Update.
func (g *Registry) States() []NodeState { return g.states }

// shardOf returns the shard containing node i. Shards are equally sized
// except the last, so this is a division, not a search.
func (g *Registry) shardOf(i int) *shard {
	size := g.shards[0].hi - g.shards[0].lo
	return &g.shards[i/size]
}

// contribution is the delta-maintained aggregate footprint of one node.
func contribution(st *NodeState) (free, hot, suspect, dead int) {
	if st.Dead {
		return 0, 0, 0, 1
	}
	free = st.HB.CapacityThreads - st.HB.UsedThreads()
	if st.Hot > 0 {
		hot = 1
	}
	if st.Suspect {
		suspect = 1
	}
	return free, hot, suspect, 0
}

// Reset replaces node i's entry wholesale (boot, reboot, rejoin).
func (g *Registry) Reset(i int, st NodeState) {
	g.Update(i, func(cur *NodeState) { *cur = st })
}

// Update applies fn to node i's entry and folds the resulting aggregate
// deltas into the node's shard and the fleet totals.
func (g *Registry) Update(i int, fn func(*NodeState)) {
	st := &g.states[i]
	f0, h0, s0, d0 := contribution(st)
	fn(st)
	st.ID = i // the ID is the registry's key, not the caller's to change
	f1, h1, s1, d1 := contribution(st)
	sh := g.shardOf(i)
	sh.freeThreads += f1 - f0
	sh.hot += h1 - h0
	sh.suspect += s1 - s0
	sh.dead += d1 - d0
	sh.aggDirty = true
	sh.orderDirty = true
	g.freeThreads += f1 - f0
	g.hot += h1 - h0
	g.suspect += s1 - s0
	g.dead += d1 - d0
}

// HotNodes returns how many nodes currently have a hot streak — the
// reconciler's O(1) early-out: no hot nodes, no eviction scan.
func (g *Registry) HotNodes() int { return g.hot }

// SuspectNodes returns how many nodes the failure detector suspects.
func (g *Registry) SuspectNodes() int { return g.suspect }

// DeadNodes returns how many nodes are declared dead.
func (g *Registry) DeadNodes() int { return g.dead }

// FreeThreads returns the fleet's total free thread capacity over
// non-dead nodes.
func (g *Registry) FreeThreads() int { return g.freeThreads }

// MinTrendVPI returns the lowest VPI trend among non-dead nodes (+Inf
// when every node is dead) — a fleet-health diagnostic.
func (g *Registry) MinTrendVPI() float64 {
	min := math.Inf(1)
	for si := range g.shards {
		sh := &g.shards[si]
		sh.ensureAgg(g.states)
		if sh.minTrendVPI < min {
			min = sh.minTrendVPI
		}
	}
	return min
}

// AnyNodeCouldFit reports whether the request would fit some live node if
// that node were empty — the sharded equivalent of anyNodeCouldFit,
// answered from the per-shard capacity bound.
func (g *Registry) AnyNodeCouldFit(req PodRequest) bool {
	for si := range g.shards {
		sh := &g.shards[si]
		sh.ensureAgg(g.states)
		if req.Threads <= sh.maxCapacity {
			return true
		}
	}
	return false
}

// ensureAgg recomputes the shard's lazy bounds if anything in the shard
// changed since they were last read.
func (s *shard) ensureAgg(states []NodeState) {
	if !s.aggDirty {
		return
	}
	s.maxFree = math.MinInt32
	s.maxCapacity = math.MinInt32
	s.minTrendVPI = math.Inf(1)
	for i := s.lo; i < s.hi; i++ {
		st := &states[i]
		if st.Dead {
			continue
		}
		if free := st.HB.CapacityThreads - st.HB.UsedThreads(); free > s.maxFree {
			s.maxFree = free
		}
		if st.HB.CapacityThreads > s.maxCapacity {
			s.maxCapacity = st.HB.CapacityThreads
		}
		if st.TrendVPI < s.minTrendVPI {
			s.minTrendVPI = st.TrendVPI
		}
	}
	s.aggDirty = false
}

// ensureOrders rebuilds the shard's per-QoS candidate orders if dirty:
// live node IDs sorted by (nodeScore, ID) ascending, so the scoring
// placer's shard-local best fitting candidate is the first order entry
// that passes the fit check.
func (s *shard) ensureOrders(states []NodeState) {
	if !s.orderDirty {
		return
	}
	s.gOrder = s.gOrder[:0]
	s.bOrder = s.bOrder[:0]
	for i := s.lo; i < s.hi; i++ {
		if states[i].Dead {
			continue
		}
		s.gOrder = append(s.gOrder, i)
		s.bOrder = append(s.bOrder, i)
	}
	sortByScore := func(order []int, guaranteed bool) {
		sort.Slice(order, func(a, b int) bool {
			sa := nodeScore(states[order[a]], guaranteed)
			sb := nodeScore(states[order[b]], guaranteed)
			if sa != sb {
				return sa < sb
			}
			return order[a] < order[b]
		})
	}
	sortByScore(s.gOrder, true)
	sortByScore(s.bOrder, false)
	s.orderDirty = false
}
