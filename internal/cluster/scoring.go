package cluster

// Scoring-based placement, after the Alibaba large-scale-cluster line of
// work: instead of gating candidates on a single VPI threshold, predict
// each node's post-placement interference from its heartbeat counters and
// take the best predicted score. The prediction is deliberately
// request-independent *given the QoS class*: the pod's thread demand is
// enforced by the fit gate, not folded into the score, so a node's rank
// within its QoS class is a pure function of its registry entry. That is
// what lets the sharded registry keep per-shard candidate orders sorted
// once per mutation and reuse them for every request — and what makes the
// shard-merge decision provably identical to a full rescan.

// Scoring weights. The score is "predicted post-placement interference":
// lower is better, and every term is an observable the heartbeat already
// carries. Hot/suspect penalties are additive cliffs large enough to
// dominate any counter-derived term, preserving the soft-avoid semantics
// (such nodes still take work when nothing healthy fits).
const (
	// Guaranteed pods spread away from interference and co-resident
	// service load: occupancy and service threads both predict pressure
	// on the new service's reserved cores.
	scoreGOccupancy = 40.0
	scoreGSvcThread = 2.0
	// BestEffort pods backfill: occupancy still predicts contention, but
	// granted lendable siblings are *negative* interference — the daemon
	// has measured those SMT siblings quiet — and co-resident service
	// threads mildly predict future reclaims.
	scoreBOccupancy = 30.0
	scoreBLendable  = 8.0
	scoreBSvcThread = 0.5
	// Cliff penalties: a hot node is being drained by the reconciler, a
	// suspect node is missing heartbeats and may be dying.
	scoreHotPenalty     = 1e4
	scoreSuspectPenalty = 1e6
)

// nodeScore predicts node st's post-placement interference for a pod of
// the given QoS class. Lower is better. Request-independent per class by
// construction (see the package comment above).
func nodeScore(st NodeState, guaranteed bool) float64 {
	cap := st.HB.CapacityThreads
	if cap < 1 {
		cap = 1
	}
	occ := float64(st.HB.UsedThreads()) / float64(cap)
	s := st.TrendVPI
	if guaranteed {
		s += scoreGOccupancy*occ + scoreGSvcThread*float64(st.HB.ServiceThreads)
	} else {
		s += scoreBOccupancy*occ +
			scoreBSvcThread*float64(st.HB.ServiceThreads) -
			scoreBLendable*float64(st.HB.Lendable)
	}
	if st.Hot > 0 {
		s += scoreHotPenalty
	}
	if st.Suspect {
		s += scoreSuspectPenalty
	}
	return s
}

// ScoringPlacer places by best predicted post-placement interference
// score over the fitting candidates, lowest node ID breaking exact ties.
type ScoringPlacer struct{}

// Name implements Placer.
func (ScoringPlacer) Name() string { return PlacerScore }

// Place implements Placer: the full-rescan reference — minimize
// (nodeScore, ID) over all fitting nodes.
func (ScoringPlacer) Place(states []NodeState, req PodRequest) int {
	best := -1
	var bestScore float64
	for _, st := range states {
		if !fits(st, req) {
			continue
		}
		s := nodeScore(st, req.Guaranteed)
		if best < 0 || s < bestScore || (s == bestScore && st.ID < best) {
			best, bestScore = st.ID, s
		}
	}
	return best
}

// PlaceReg implements registryPlacer: the same decision answered from the
// sharded registry. Shards whose max free capacity cannot fit the request
// are skipped on their O(1) bound; in the rest, the pre-sorted candidate
// order for the request's QoS class is walked until the first fitting
// node — which, because the order is ascending (score, ID) and the score
// is request-independent per class, is exactly that shard's best
// candidate. The global winner is the best shard winner.
func (ScoringPlacer) PlaceReg(g *Registry, req PodRequest) int {
	best := -1
	var bestScore float64
	for si := range g.shards {
		sh := &g.shards[si]
		sh.ensureAgg(g.states)
		if sh.maxFree < req.Threads {
			continue
		}
		sh.ensureOrders(g.states)
		order := sh.bOrder
		if req.Guaranteed {
			order = sh.gOrder
		}
		for _, id := range order {
			st := g.states[id]
			if !fits(st, req) {
				continue
			}
			s := nodeScore(st, req.Guaranteed)
			if best < 0 || s < bestScore || (s == bestScore && id < best) {
				best, bestScore = id, s
			}
			break // first fitting node in order is the shard's best
		}
	}
	return best
}
