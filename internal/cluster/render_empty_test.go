package cluster

import (
	"strings"
	"testing"

	"github.com/holmes-colocation/holmes/internal/stats"
)

// TestRenderUnmeasuredService pins the empty-summary rendering: a live
// service that completed zero queries must show "n/a" latency columns,
// not the zero-valued summary that reads as a perfect 0 µs p99.
func TestRenderUnmeasuredService(t *testing.T) {
	measured := stats.NewSample(4)
	measured.AddAll([]float64{1000, 2000, 3000})
	r := &Result{
		Spec: DefaultSpec(),
		Services: []ServiceResult{
			{Name: "svc-ok", Workload: "a", Node: 0, Queries: 3, Summary: measured.Summarize()},
			{Name: "svc-starved", Workload: "a", Node: 1, Queries: 0, Summary: stats.NewSample(0).Summarize()},
			{Name: "svc-lost", Workload: "a", Lost: true},
		},
	}
	out := r.Render()
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "svc-starved"):
			if !strings.Contains(line, "n/a") {
				t.Fatalf("unmeasured service row lacks n/a: %q", line)
			}
		case strings.Contains(line, "svc-ok"):
			if strings.Contains(line, "n/a") {
				t.Fatalf("measured service row rendered as unmeasured: %q", line)
			}
		case strings.Contains(line, "svc-lost"):
			if !strings.Contains(line, "lost") {
				t.Fatalf("lost service row lacks lost marker: %q", line)
			}
		}
	}
	if r.TotalQueries() != 3 {
		t.Fatalf("TotalQueries = %d, want 3", r.TotalQueries())
	}
}
