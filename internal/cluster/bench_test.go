package cluster

import "testing"

// benchRegistry is a 64-node registry with heterogeneous load, the
// scheduler's worst supported case.
func benchRegistry() []NodeState {
	sts := make([]NodeState, 64)
	for i := range sts {
		sts[i] = NodeState{ID: i, HB: Heartbeat{
			Node:            i,
			SmoothedVPI:     float64((i * 7) % 60),
			ServiceThreads:  (i * 3) % 12,
			BatchThreads:    (i * 5) % 16,
			CapacityThreads: 32,
			Lendable:        i % 4,
		}}
		if i%16 == 3 {
			sts[i].Hot = 2
		}
	}
	return sts
}

func BenchmarkVPIAwarePlace64Nodes(b *testing.B) {
	sts := benchRegistry()
	req := PodRequest{Name: "batch-bench", Threads: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if (VPIAware{}).Place(sts, req) < 0 {
			b.Fatal("no node fit")
		}
	}
}

func BenchmarkBinPackPlace64Nodes(b *testing.B) {
	sts := benchRegistry()
	req := PodRequest{Name: "batch-bench", Threads: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if (BinPack{}).Place(sts, req) < 0 {
			b.Fatal("no node fit")
		}
	}
}
