package cluster

import (
	"strings"
	"testing"
)

// testSpec is a small fleet that still exercises every control-plane
// path: two services to spread, a batch stream to backfill and reap.
func testSpec() Spec {
	s := DefaultSpec()
	s.Nodes = 3
	s.CoresPerNode = 4
	s.Services = s.Services[:2]
	s.WarmupSeconds = 0.2
	s.DurationSeconds = 0.6
	s.Batch = BatchStream{Pods: 6, PodsPerRound: 2, Containers: 2,
		ThreadsPerContainer: 1, WorkUnitsPerThread: 120}
	return s
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	r1, err := Run(spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(spec, RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Fatalf("output differs between Workers 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			r1.Render(), r8.Render())
	}
}

func TestRunPlacesAndCompletes(t *testing.T) {
	spec := testSpec()
	res, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 2 {
		t.Fatalf("got %d service results, want 2", len(res.Services))
	}
	for _, s := range res.Services {
		if s.Queries == 0 {
			t.Errorf("service %s measured no queries", s.Name)
		}
		if s.Summary.P99 <= 0 {
			t.Errorf("service %s has no p99", s.Name)
		}
	}
	if res.PlacedBatch == 0 {
		t.Error("no batch pods placed")
	}
	if res.BatchCompleted == 0 {
		t.Error("no batch pods completed")
	}
	if res.ClusterUtil <= 0 || res.ClusterUtil > 1 {
		t.Errorf("cluster utilization %.3f out of (0,1]", res.ClusterUtil)
	}
	out := res.Render()
	for _, want := range []string{"cluster utilization", "reconciler", "vpi placement"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNodeHeartbeat(t *testing.T) {
	spec := testSpec()
	n, err := bootNode(spec, 0, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := n.PlaceService(spec.Services[0]); err != nil {
		t.Fatal(err)
	}
	if err := n.PlaceBatch("b0", 0, 2, 1, 50); err != nil {
		t.Fatal(err)
	}
	n.Advance(50_000_000)
	hb := n.Heartbeat()
	if hb.CapacityThreads != 2*spec.CoresPerNode {
		t.Errorf("capacity %d, want %d", hb.CapacityThreads, 2*spec.CoresPerNode)
	}
	if hb.ServicePods != 1 || hb.ServiceThreads == 0 {
		t.Errorf("service occupancy %d pods / %d threads", hb.ServicePods, hb.ServiceThreads)
	}
	if hb.BatchPods != 1 || hb.BatchThreads != 2 {
		t.Errorf("batch occupancy %d pods / %d threads", hb.BatchPods, hb.BatchThreads)
	}
	if hb.Reserved != spec.reservedCPUs() {
		t.Errorf("reserved %d, want %d", hb.Reserved, spec.reservedCPUs())
	}
	if len(hb.CPUVPI) != hb.CapacityThreads {
		t.Errorf("CPUVPI has %d entries, want %d", len(hb.CPUVPI), hb.CapacityThreads)
	}
}

// states builds a registry where node i has the given used service/batch
// threads; capacity is 16 threads each.
func mkStates(used ...[2]int) []NodeState {
	sts := make([]NodeState, len(used))
	for i, u := range used {
		sts[i] = NodeState{ID: i, HB: Heartbeat{
			Node: i, ServiceThreads: u[0], BatchThreads: u[1], CapacityThreads: 16,
		}}
	}
	return sts
}

func TestBinPackFirstFit(t *testing.T) {
	sts := mkStates([2]int{16, 0}, [2]int{6, 0}, [2]int{0, 0})
	got := (BinPack{}).Place(sts, PodRequest{Threads: 8})
	if got != 1 {
		t.Fatalf("binpack chose node %d, want 1 (first with room)", got)
	}
	if got := (BinPack{}).Place(sts, PodRequest{Threads: 17}); got != -1 {
		t.Fatalf("binpack placed an unfittable pod on node %d", got)
	}
}

func TestVPIAwareSpreadsGuaranteed(t *testing.T) {
	sts := mkStates([2]int{6, 0}, [2]int{0, 0}, [2]int{6, 0})
	sts[0].HB.SmoothedVPI = 10
	sts[1].HB.SmoothedVPI = 30
	sts[2].HB.SmoothedVPI = 5
	got := (VPIAware{}).Place(sts, PodRequest{Guaranteed: true, Threads: 4})
	if got != 2 {
		t.Fatalf("guaranteed pod placed on node %d, want 2 (lowest VPI)", got)
	}
	// Equal VPI: fewest service threads breaks the tie.
	sts[2].HB.SmoothedVPI = 10
	sts[1].HB.SmoothedVPI = 10
	got = (VPIAware{}).Place(sts, PodRequest{Guaranteed: true, Threads: 4})
	if got != 1 {
		t.Fatalf("guaranteed pod placed on node %d, want 1 (fewest service threads)", got)
	}
}

func TestVPIAwareBackfillsLendable(t *testing.T) {
	sts := mkStates([2]int{8, 0}, [2]int{8, 0}, [2]int{12, 0})
	sts[0].HB.Lendable = 0
	sts[1].HB.Lendable = 3 // same free threads, more grantable siblings
	got := (VPIAware{}).Place(sts, PodRequest{Threads: 4})
	if got != 1 {
		t.Fatalf("besteffort pod placed on node %d, want 1 (most lendable)", got)
	}
}

func TestVPIAwareAvoidsHotNodesUnlessOnlyFit(t *testing.T) {
	sts := mkStates([2]int{0, 0}, [2]int{8, 0})
	sts[0].Hot = 2
	got := (VPIAware{}).Place(sts, PodRequest{Threads: 4})
	if got != 1 {
		t.Fatalf("besteffort pod placed on node %d, want 1 (node 0 is hot)", got)
	}
	// When only hot nodes fit, placing still beats dropping.
	sts[1].HB.ServiceThreads = 16
	got = (VPIAware{}).Place(sts, PodRequest{Threads: 4})
	if got != 0 {
		t.Fatalf("besteffort pod placed on node %d, want 0 (only fit)", got)
	}
	// Hot nodes never take Guaranteed skips — VPI score decides.
	sts[0].HB.SmoothedVPI = 50
	sts[1].HB.ServiceThreads = 8
	sts[1].HB.SmoothedVPI = 10
	got = (VPIAware{}).Place(sts, PodRequest{Guaranteed: true, Threads: 4})
	if got != 1 {
		t.Fatalf("guaranteed pod placed on node %d, want 1", got)
	}
}

func placedFor(node int, seq int, evictions int) *placedPod {
	return &placedPod{
		pending: &pendingPod{req: PodRequest{Name: ""}, evictions: evictions},
		node:    node,
		seq:     seq,
	}
}

func TestReconcileDecisions(t *testing.T) {
	sts := mkStates([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	sts[0].Hot = 2
	sts[2].Hot = 1 // below hotRounds: untouched
	placed := map[string]*placedPod{
		"a": placedFor(0, 1, 0),
		"b": placedFor(0, 5, 0), // youngest on the hot node
		"c": placedFor(2, 9, 0),
	}
	placed["a"].pending.req.Name = "a"
	placed["b"].pending.req.Name = "b"
	placed["c"].pending.req.Name = "c"
	evs := reconcileDecisions(sts, placed, 2, 2)
	if len(evs) != 1 || evs[0].node != 0 || evs[0].pod != "b" {
		t.Fatalf("decisions %+v, want [{node 0 pod b}]", evs)
	}
	// A pinned pod (evictions exhausted) is never chosen again.
	placed["b"].pending.evictions = 2
	evs = reconcileDecisions(sts, placed, 2, 2)
	if len(evs) != 1 || evs[0].pod != "a" {
		t.Fatalf("decisions %+v, want pod a after b is pinned", evs)
	}
	placed["a"].pending.evictions = 2
	if evs = reconcileDecisions(sts, placed, 2, 2); len(evs) != 0 {
		t.Fatalf("decisions %+v, want none with all pods pinned", evs)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"nodes", func(s *Spec) { s.Nodes = 0 }, "nodes 0 out of range"},
		{"nodes high", func(s *Spec) { s.Nodes = 1025 }, "nodes 1025 out of range"},
		{"lod", func(s *Spec) { s.LoD = "adaptive" }, `unknown lod "adaptive"`},
		{"cores", func(s *Spec) { s.CoresPerNode = 100 }, "cores_per_node 100 out of range"},
		{"reserved", func(s *Spec) { s.ReservedCPUs = 9 }, "reserved CPUs exceed"},
		{"placer", func(s *Spec) { s.Placer = "random" }, `unknown placer "random"`},
		{"duration", func(s *Spec) { s.DurationSeconds = -1 }, "duration_seconds must be positive"},
		{"warmup", func(s *Spec) { s.WarmupSeconds = -1 }, "warmup_seconds must not be negative"},
		{"no services", func(s *Spec) { s.Services = nil }, "at least one service"},
		{"dup service", func(s *Spec) { s.Services = append(s.Services, s.Services[0]) }, "duplicate service name"},
		{"bad store", func(s *Spec) { s.Services[0].Store = "mongo" }, `unknown store "mongo"`},
		{"bad rps", func(s *Spec) { s.Services[0].RPS = 0 }, "positive rps"},
		{"bad kind", func(s *Spec) { s.Batch.Kinds = []string{"quantum"} }, `unknown batch kind "quantum"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	big := DefaultSpec()
	big.Nodes = 1024
	big.Placer = PlacerScore
	big.LoD = LoDAuto
	if err := big.Validate(); err != nil {
		t.Fatalf("1024-node score/lod spec invalid: %v", err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"nodes": 2, "scheduler": "vpi"}`))
	if err == nil || !strings.Contains(err.Error(), "scheduler") {
		t.Fatalf("Load accepted unknown field: %v", err)
	}
}
