package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/holmes-colocation/holmes/internal/batch"
	"github.com/holmes-colocation/holmes/internal/faults"
	"github.com/holmes-colocation/holmes/internal/scenario"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

// Spec describes a whole cluster run: the fleet, the Guaranteed service
// pods to place, the BestEffort pod stream, and the control-plane knobs.
// It is pure data — JSON-loadable for cmd/holmes-cluster — and every
// stochastic component of the run derives its seed from Seed, so a Spec
// identifies one reproducible outcome.
type Spec struct {
	Name string `json:"name"`
	// Nodes is the fleet size; CoresPerNode the physical cores of each
	// node's machine (x2 hardware threads).
	Nodes        int `json:"nodes"`
	CoresPerNode int `json:"cores_per_node"`
	// ReservedCPUs is each node's initial Holmes reserved pool (0 = 4).
	ReservedCPUs int `json:"reserved_cpus"`
	// Placer selects the placement policy: "vpi" (interference-aware),
	// "score" (predicted post-placement interference score), or
	// "binpack" (first-fit by thread count, the baseline).
	Placer string `json:"placer"`
	// LoD selects node simulation fidelity: "full" (default) advances
	// every node's machine each round; "auto" fast-forwards quiescent
	// nodes (no pods, no hot streak, not suspect, VPI trend quiet) and
	// pays their lag back only when placement targets them. "auto"
	// silently falls back to full fidelity when a node-fault chaos
	// schedule is present, whose per-round crash/partition semantics
	// need every node advanced.
	LoD string `json:"lod,omitempty"`
	// HeartbeatMs is the node heartbeat / control-plane round period.
	HeartbeatMs int64 `json:"heartbeat_ms"`
	// WarmupSeconds and DurationSeconds are simulated time; measurement
	// (latency, utilization, completions) covers only the duration.
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	Seed            uint64  `json:"seed"`
	// SLOUs is the per-query latency SLO in microseconds (0 = 200).
	SLOUs float64 `json:"slo_us"`
	// EvictVPI is the reconciler threshold: a node whose round-scale VPI
	// trend (EWMA over heartbeat SmoothedVPI) stays at or above it for
	// HotRounds consecutive heartbeats gets a BestEffort pod evicted and
	// rescheduled (0 = 25).
	EvictVPI float64 `json:"evict_vpi"`
	// HotRounds is the consecutive-hot-heartbeat count that arms an
	// eviction (0 = 2).
	HotRounds int `json:"hot_rounds"`
	// MaxEvictions bounds how often one pod may be evicted before it is
	// pinned in place (0 = 2); with the placement retry bound this keeps
	// rescheduling from livelocking.
	MaxEvictions int `json:"max_evictions"`

	// Chaos, when non-nil, applies the fault schedule to the run: counter
	// and cgroup faults are injected into every node's daemon, node-level
	// faults (crash, heartbeat loss, slow node) into the control-plane
	// rounds. See internal/faults.
	Chaos *faults.Spec `json:"chaos,omitempty"`
	// SuspectRounds/DeadRounds tune the phi-style failure detector: a
	// node is suspected (soft-avoided by placement) at phi >=
	// SuspectRounds and declared dead (pods rescheduled from checkpoints)
	// at phi >= DeadRounds, where phi is missed rounds normalized by the
	// node's own heartbeat-gap history (0 = 3 and 6).
	SuspectRounds int `json:"suspect_rounds"`
	DeadRounds    int `json:"dead_rounds"`
	// DisableDegradation switches off every graceful-degradation
	// mechanism — the daemon watchdog and re-scan, the failure detector,
	// checkpoint rescheduling — so the control plane schedules on
	// whatever garbage the faults produce. The chaos experiment's
	// control arm.
	DisableDegradation bool `json:"disable_degradation"`

	Services []ServiceSpec `json:"services"`
	Batch    BatchStream   `json:"batch"`

	// Topology, when non-nil, adds the open-loop traffic plane: replicated
	// services behind the load-balancer tier, driven by declarative
	// traffic programs and grown/shrunk by the horizontal autoscaler (see
	// internal/scenario.Topology and internal/traffic). A spec may carry
	// classic closed-loop Services, a Topology, or both; with a Topology
	// present, Services may be empty.
	Topology *scenario.Topology `json:"topology,omitempty"`
}

// ServiceSpec is one Guaranteed service pod: a latency-critical store
// plus its open-loop YCSB client, placed by the control plane.
type ServiceSpec struct {
	Name     string `json:"name"`
	Store    string `json:"store"`
	Workload string `json:"workload"` // YCSB a..f ("" = a)
	// RecordCount preloads the store (0 = 20,000).
	RecordCount int64   `json:"record_count"`
	RPS         float64 `json:"rps"`
}

// BatchStream is the BestEffort pod arrival process: Pods total, up to
// PodsPerRound entering the pending queue each heartbeat round.
type BatchStream struct {
	Pods         int `json:"pods"`
	PodsPerRound int `json:"pods_per_round"`
	// Shape of each pod (0s = 2 containers x 2 threads x 600 units).
	Containers          int `json:"containers"`
	ThreadsPerContainer int `json:"threads_per_container"`
	WorkUnitsPerThread  int `json:"work_units_per_thread"`
	// Kinds rotates the workload profile (empty = all batch kinds).
	Kinds []string `json:"kinds"`
}

// Placer policy names.
const (
	PlacerVPI     = "vpi"
	PlacerScore   = "score"
	PlacerBinPack = "binpack"
)

// Level-of-detail settings.
const (
	LoDFull = "full"
	LoDAuto = "auto"
)

// DefaultSpec is the 6-node reference cluster: four LC services to
// spread, a stream of BestEffort pods to backfill.
func DefaultSpec() Spec {
	return Spec{
		Name:            "cluster",
		Nodes:           6,
		CoresPerNode:    8,
		Placer:          PlacerVPI,
		HeartbeatMs:     50,
		WarmupSeconds:   1,
		DurationSeconds: 3,
		Seed:            1,
		Services: []ServiceSpec{
			{Name: "redis-a", Store: "redis", Workload: "a", RPS: 10_000},
			{Name: "rocksdb-a", Store: "rocksdb", Workload: "a", RPS: 40_000},
			{Name: "memcached-a", Store: "memcached", Workload: "a", RPS: 40_000},
			{Name: "wiredtiger-a", Store: "wiredtiger", Workload: "a", RPS: 40_000},
		},
		Batch: BatchStream{Pods: 48, PodsPerRound: 6, Containers: 2,
			ThreadsPerContainer: 2, WorkUnitsPerThread: 900},
	}
}

// Load parses a JSON cluster spec, rejecting unknown fields so typos
// surface as errors instead of silently ignored knobs.
func Load(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("cluster: %w", err)
	}
	return s, s.Validate()
}

// Validate checks the spec and returns a descriptive error for the first
// problem found.
func (s Spec) Validate() error {
	if s.Nodes < 1 || s.Nodes > 1024 {
		return fmt.Errorf("cluster: nodes %d out of range [1,1024]", s.Nodes)
	}
	if s.CoresPerNode < 1 || s.CoresPerNode > 64 {
		return fmt.Errorf("cluster: cores_per_node %d out of range [1,64]", s.CoresPerNode)
	}
	if s.ReservedCPUs < 0 || s.reservedCPUs() > s.CoresPerNode {
		return fmt.Errorf("cluster: %d reserved CPUs exceed %d cores per node",
			s.reservedCPUs(), s.CoresPerNode)
	}
	switch s.Placer {
	case "", PlacerVPI, PlacerScore, PlacerBinPack:
	default:
		return fmt.Errorf("cluster: unknown placer %q (want %q, %q or %q)",
			s.Placer, PlacerVPI, PlacerScore, PlacerBinPack)
	}
	switch s.LoD {
	case "", LoDFull, LoDAuto:
	default:
		return fmt.Errorf("cluster: unknown lod %q (want %q or %q)",
			s.LoD, LoDFull, LoDAuto)
	}
	if s.HeartbeatMs < 0 {
		return fmt.Errorf("cluster: heartbeat_ms must be positive")
	}
	if s.DurationSeconds <= 0 {
		return fmt.Errorf("cluster: duration_seconds must be positive")
	}
	if s.WarmupSeconds < 0 {
		return fmt.Errorf("cluster: warmup_seconds must not be negative")
	}
	if len(s.Services) == 0 && s.Topology == nil {
		return fmt.Errorf("cluster: at least one service required")
	}
	if s.Topology != nil {
		if err := s.Topology.Validate(); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, svc := range s.Services {
		if svc.Name == "" {
			return fmt.Errorf("cluster: every service needs a name")
		}
		if seen[svc.Name] {
			return fmt.Errorf("cluster: duplicate service name %q", svc.Name)
		}
		seen[svc.Name] = true
		switch svc.Store {
		case "redis", "memcached", "rocksdb", "wiredtiger":
		default:
			return fmt.Errorf("cluster: service %s: unknown store %q", svc.Name, svc.Store)
		}
		if _, err := ycsb.ByName(defaultStr(svc.Workload, "a")); err != nil {
			return fmt.Errorf("cluster: service %s: %w", svc.Name, err)
		}
		if svc.RPS <= 0 {
			return fmt.Errorf("cluster: service %s needs a positive rps", svc.Name)
		}
	}
	if s.Batch.Pods < 0 || s.Batch.PodsPerRound < 0 {
		return fmt.Errorf("cluster: batch pod counts must not be negative")
	}
	for _, name := range s.Batch.Kinds {
		if _, err := batchKind(name); err != nil {
			return err
		}
	}
	if s.SuspectRounds < 0 || s.DeadRounds < 0 {
		return fmt.Errorf("cluster: detector rounds must not be negative")
	}
	if s.deadRounds() <= s.suspectRounds() {
		return fmt.Errorf("cluster: dead_rounds %d must exceed suspect_rounds %d",
			s.deadRounds(), s.suspectRounds())
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Defaulted accessors: zero values mean "use the reference setting", so a
// hand-written JSON spec only states what it changes.

func (s Spec) reservedCPUs() int {
	if s.ReservedCPUs == 0 {
		return 4
	}
	return s.ReservedCPUs
}

func (s Spec) heartbeatNs() int64 {
	if s.HeartbeatMs == 0 {
		return 50_000_000
	}
	return s.HeartbeatMs * 1_000_000
}

func (s Spec) sloNs() float64 {
	if s.SLOUs == 0 {
		return 200_000 // 200 µs, a few x the stores' uncontended p99
	}
	return s.SLOUs * 1e3
}

// resilientTopology reports whether any replicated service runs the
// request-path resilience layer — the gate for the "requests" SLO, so
// non-resilient runs keep their exact pre-existing alert stream.
func (s Spec) resilientTopology() bool {
	if s.Topology == nil {
		return false
	}
	for _, rs := range s.Topology.Services {
		if rs.Resilience != nil {
			return true
		}
	}
	return false
}

func (s Spec) evictVPI() float64 {
	if s.EvictVPI == 0 {
		return 25
	}
	return s.EvictVPI
}

func (s Spec) hotRounds() int {
	if s.HotRounds == 0 {
		return 2
	}
	return s.HotRounds
}

func (s Spec) maxEvictions() int {
	if s.MaxEvictions == 0 {
		return 2
	}
	return s.MaxEvictions
}

func (s Spec) placer() string {
	if s.Placer == "" {
		return PlacerVPI
	}
	return s.Placer
}

// lodAuto reports whether the run should fast-forward quiescent nodes.
// A node-fault chaos schedule forces full fidelity: crash, partition and
// slow-node rounds assume every machine advances in lockstep.
func (s Spec) lodAuto() bool {
	return s.LoD == LoDAuto && (s.Chaos == nil || !s.Chaos.Nodes.Enabled())
}

func (s Spec) suspectRounds() int {
	if s.SuspectRounds == 0 {
		return 3
	}
	return s.SuspectRounds
}

func (s Spec) deadRounds() int {
	if s.DeadRounds == 0 {
		return 6
	}
	return s.DeadRounds
}

// rounds converts the warmup/duration seconds into heartbeat rounds.
func (s Spec) rounds() (warmup, measure int) {
	hbNs := s.heartbeatNs()
	warmup = int((int64(s.WarmupSeconds*1e9) + hbNs - 1) / hbNs)
	measure = int((int64(s.DurationSeconds*1e9) + hbNs - 1) / hbNs)
	if measure < 1 {
		measure = 1
	}
	return
}

// totalSimNs is the full simulated length of the run (warmup included),
// the horizon fault schedules are resolved against.
func (s Spec) totalSimNs() int64 {
	w, m := s.rounds()
	return int64(w+m) * s.heartbeatNs()
}

func (b BatchStream) podSpecShape() (containers, threads, units int) {
	containers, threads, units = b.Containers, b.ThreadsPerContainer, b.WorkUnitsPerThread
	if containers <= 0 {
		containers = 2
	}
	if threads <= 0 {
		threads = 2
	}
	if units <= 0 {
		units = 600
	}
	return
}

func (b BatchStream) kinds() ([]batch.Kind, error) {
	if len(b.Kinds) == 0 {
		return batch.Kinds(), nil
	}
	kinds := make([]batch.Kind, 0, len(b.Kinds))
	for _, name := range b.Kinds {
		k, err := batchKind(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func batchKind(name string) (batch.Kind, error) {
	for _, k := range batch.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown batch kind %q", name)
}

func defaultStr(v, d string) string {
	if v == "" {
		return d
	}
	return v
}
