package cluster

import (
	"fmt"
	"strings"
	"testing"

	"github.com/holmes-colocation/holmes/internal/faults"
	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/scenario"
)

// trafficSpec is a small traffic-only cluster: no closed-loop services,
// no batch stream, one replicated frontend under the default diurnal
// program compressed into a few simulated seconds.
func trafficSpec(users int64) Spec {
	spec := DefaultSpec()
	spec.Name = "traffic-test"
	spec.Nodes = 4
	spec.Services = nil
	spec.Batch = BatchStream{}
	spec.WarmupSeconds = 0.5
	spec.DurationSeconds = 4
	topo := scenario.DefaultTopology(users, spec.WarmupSeconds+spec.DurationSeconds)
	spec.Topology = &topo
	return spec
}

func TestTrafficConservationAndScaling(t *testing.T) {
	res, err := Run(trafficSpec(120_000), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Traffic
	if tr == nil {
		t.Fatal("no traffic result on a run with a topology")
	}
	if !tr.Conserved {
		t.Fatalf("request accounting not conserved: %d arrivals != %d done + %d drop + %d lost + %d in flight",
			tr.Arrivals, tr.Completions, tr.Drops, tr.Lost, tr.InFlight)
	}
	if tr.Arrivals < 1000 {
		t.Fatalf("implausibly few arrivals: %d", tr.Arrivals)
	}
	if tr.Completions == 0 {
		t.Fatal("no completed requests")
	}
	if tr.ScaleUps == 0 {
		t.Errorf("autoscaler never scaled up through two spikes (arrivals %d, drops %d)",
			tr.Arrivals, tr.Drops)
	}
	if tr.ScaleDowns == 0 {
		t.Errorf("autoscaler never decayed after the spikes (scale-ups %d)", tr.ScaleUps)
	}
	fe := tr.Services[0]
	if fe.PeakReplicas <= 2 {
		t.Errorf("replica count never rose above the initial 2 (peak %d)", fe.PeakReplicas)
	}
	if !fe.Summary.Valid {
		t.Error("no measured latency distribution for the frontend")
	}
	out := res.Render()
	for _, want := range []string{"traffic plane", "request accounting", "conserved", "autoscaler:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q", want)
		}
	}
}

// TestTrafficDeterministicAcrossWorkers pins the traffic plane's
// determinism contract: byte-identical rendered output at any advance
// parallelism, with and without an observability plane attached.
func TestTrafficDeterministicAcrossWorkers(t *testing.T) {
	spec := trafficSpec(60_000)
	spec.DurationSeconds = 2
	base, err := Run(spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		res, err := Run(spec, RunOptions{Workers: workers, Obs: obs.NewPlane(spec.Nodes, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if base.Render() != res.Render() {
			t.Fatalf("workers=%d output differs from serial run", workers)
		}
	}
}

// TestTrafficFailoverAccounting drives traffic through a scripted node
// crash: the balancer must fail over without losing track of a single
// request — completions + drops + lost + in-flight still sum to
// arrivals — and the replica floor must be restored on a new node.
func TestTrafficFailoverAccounting(t *testing.T) {
	spec := trafficSpec(120_000)
	sched := faults.Spec{}
	sched.Nodes.Crashes = []faults.NodeCrash{{Node: 1, Round: 30, DownRounds: 25}}
	spec.Chaos = &sched
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Traffic
	if res.Crashes == 0 {
		t.Fatal("scripted crash did not fire")
	}
	if !tr.Conserved {
		t.Fatalf("accounting broke across failover: %d arrivals != %d done + %d drop + %d lost + %d in flight",
			tr.Arrivals, tr.Completions, tr.Drops, tr.Lost, tr.InFlight)
	}
	fe := tr.Services[0]
	if fe.Replicas < spec.Topology.Services[0].MinReplicas() {
		t.Errorf("replica floor not restored after crash: %d live, want >= %d",
			fe.Replicas, spec.Topology.Services[0].MinReplicas())
	}
	if fe.Lost == 0 && fe.Drops == 0 {
		t.Log("crash lost no in-flight requests (possible on an idle round, but worth noting)")
	}
}

// TestTrafficResilienceUnderFaults drives a resilient client stack
// (deadlines, budgeted retries, breaker, shedding) through a combined
// fault schedule — a node crash overlapping a heartbeat partition — and
// requires the extended accounting identity to stay exact: arrivals =
// completions + drops + shed + expired + lost + in-flight, with retries
// tracked separately as amplification.
func TestTrafficResilienceUnderFaults(t *testing.T) {
	spec := trafficSpec(120_000)
	spec.Topology.Services[0].Resilience = &scenario.ResilienceSpec{
		DeadlineMs:         40,
		MaxAttempts:        3,
		RetryBackoffRounds: 1,
		RetryJitterRounds:  2,
		RetryBudget:        0.2,
		BreakerFailureRate: 0.5,
		BreakerMinVolume:   100,
		ConcurrencyLimit:   96,
	}
	sched := faults.Spec{}
	sched.Nodes.Crashes = []faults.NodeCrash{{Node: 0, Round: 25, DownRounds: 20}}
	sched.Nodes.Partitions = []faults.NodePartition{{Node: 1, Round: 30, Rounds: 6}}
	spec.Chaos = &sched
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Traffic
	if res.Crashes == 0 {
		t.Fatal("scripted crash did not fire")
	}
	if !tr.Conserved {
		t.Fatalf("extended accounting broke under faults: %d arrivals != %d done + %d drop + %d shed + %d expired + %d lost + %d in flight",
			tr.Arrivals, tr.Completions, tr.Drops, tr.Shed, tr.Expired, tr.Lost, tr.InFlight)
	}
	fe := tr.Services[0]
	if !fe.Resilient {
		t.Fatal("service did not report a resilience layer")
	}
	// Retries are amplification on top of first attempts, never part of
	// the conserved identity: every retry is itself an arrival.
	if tr.Retries > 0 && tr.Arrivals <= tr.Completions+tr.Drops {
		if tr.Amplification() < 1 {
			t.Fatalf("amplification %.3f below 1 with %d retries", tr.Amplification(), tr.Retries)
		}
	}
	if fe.Retries != tr.Retries {
		t.Fatalf("service retries %d != fleet retries %d on a one-service topology",
			fe.Retries, tr.Retries)
	}
	// The drop-reason split must cover every drop.
	if fe.DropsUnroutable+fe.DropsCapacity+fe.DropsBreaker != fe.Drops {
		t.Fatalf("drop reasons %d+%d+%d do not sum to %d",
			fe.DropsUnroutable, fe.DropsCapacity, fe.DropsBreaker, fe.Drops)
	}
	out := res.Render()
	for _, want := range []string{"request-path resilience", "shed", "expired", "conserved"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered resilient result missing %q", want)
		}
	}
	// Determinism holds under the combined schedule too.
	again, err := Run(spec, RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Fatal("resilient faulted run not deterministic across workers")
	}
}

// TestTrafficAutoscalerSpans checks the replica lifecycle is visible on
// the observability plane: scale-up/scale-down spans on the control-plane
// recorder and the autoscaler replica series in the store.
func TestTrafficAutoscalerSpans(t *testing.T) {
	plane := obs.NewPlane(4, 0)
	res, err := Run(trafficSpec(120_000), RunOptions{Obs: plane})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.ScaleUps == 0 {
		t.Skip("no scale-ups this run; span presence untestable")
	}
	var ups, retires int
	for _, s := range plane.Control().Snapshot() {
		switch s.Kind.String() {
		case "ReplicaScaleUp":
			ups++
		case "ReplicaRetire":
			retires++
		}
	}
	if ups == 0 {
		t.Error("no ReplicaScaleUp spans recorded")
	}
	if res.Traffic.ScaleDowns > 0 && retires == 0 {
		t.Error("scale-downs happened but no ReplicaRetire spans recorded")
	}
	series := plane.Store.Series("autoscaler/frontend/replicas").Points()
	if len(series) == 0 {
		t.Fatal("no autoscaler replica series recorded")
	}
	var peak float64
	for _, p := range series {
		if p.Value > peak {
			peak = p.Value
		}
	}
	if peak <= 2 {
		t.Errorf("replica series never rose above the initial count (peak %.0f)", peak)
	}
	if got := fmt.Sprint(res.Traffic.Services[0].ScaleUps); got == "0" {
		t.Error("per-service scale-up count is zero despite fleet scale-ups")
	}
}
