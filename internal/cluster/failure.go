package cluster

// failureDetector is a phi-accrual-style heartbeat failure detector
// (after Hayashibara et al.), simplified to the control plane's
// synchronous rounds: instead of fitting a distribution over
// inter-arrival times it keeps an EWMA of each node's inter-heartbeat
// gap (in rounds) and scores suspicion as
//
//	phi = roundsSinceLastHeartbeat / meanGap
//
// A node whose history says it never misses grows suspicious after a
// couple of silent rounds; a node with chronically lossy heartbeats
// earns proportional tolerance. The mean gap is clamped to
// [1, maxMeanGap] so a truly dead node is always declared within
// maxMeanGap*deadPhi rounds no matter how flaky its past.
type failureDetector struct {
	suspectPhi float64
	deadPhi    float64
	meanGap    []float64
	since      []int
}

const (
	// gapAlpha is the EWMA weight of the latest observed gap.
	gapAlpha = 0.2
	// maxMeanGap bounds the learned tolerance: even a node that loses
	// every other heartbeat is declared dead after 2*deadPhi silent
	// rounds.
	maxMeanGap = 2.0
)

func newFailureDetector(nodes int, suspectPhi, deadPhi float64) *failureDetector {
	fd := &failureDetector{
		suspectPhi: suspectPhi,
		deadPhi:    deadPhi,
		meanGap:    make([]float64, nodes),
		since:      make([]int, nodes),
	}
	for i := range fd.meanGap {
		fd.meanGap[i] = 1
	}
	return fd
}

// observe records one round's outcome for node i: a delivered heartbeat
// closes the current gap into the EWMA; a miss just widens it.
func (fd *failureDetector) observe(i int, delivered bool) {
	if !delivered {
		fd.since[i]++
		return
	}
	gap := float64(fd.since[i] + 1)
	fd.meanGap[i] += gapAlpha * (gap - fd.meanGap[i])
	if fd.meanGap[i] > maxMeanGap {
		fd.meanGap[i] = maxMeanGap
	}
	if fd.meanGap[i] < 1 {
		fd.meanGap[i] = 1
	}
	fd.since[i] = 0
}

func (fd *failureDetector) phi(i int) float64 {
	return float64(fd.since[i]) / fd.meanGap[i]
}

func (fd *failureDetector) suspect(i int) bool { return fd.phi(i) >= fd.suspectPhi }
func (fd *failureDetector) dead(i int) bool    { return fd.phi(i) >= fd.deadPhi }

// reset forgets node i's history — used when a node reboots or rejoins,
// so its fresh incarnation starts with a clean record.
func (fd *failureDetector) reset(i int) {
	fd.meanGap[i] = 1
	fd.since[i] = 0
}
