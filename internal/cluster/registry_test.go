package cluster

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator for test schedules.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *lcg) intn(n int) int { return int(g.next() % uint64(n)) }

// refAggregates recomputes the fleet aggregates from scratch.
func refAggregates(states []NodeState) (free, hot, suspect, dead int, minTrend float64) {
	minTrend = math.Inf(1)
	for i := range states {
		st := &states[i]
		if st.Dead {
			dead++
			continue
		}
		free += st.HB.CapacityThreads - st.HB.UsedThreads()
		if st.Hot > 0 {
			hot++
		}
		if st.Suspect {
			suspect++
		}
		if st.TrendVPI < minTrend {
			minTrend = st.TrendVPI
		}
	}
	return
}

// chaosMutate applies one pseudo-random registry transition: a delivered
// heartbeat, a placement booking, a crash, a partition (missed
// heartbeats accruing suspicion), a death verdict, or a reboot.
func chaosMutate(g *Registry, rng *lcg, i int) {
	switch rng.intn(7) {
	case 0: // delivered heartbeat
		trend := float64(rng.intn(400)) / 10
		lend := rng.intn(5)
		used := rng.intn(20)
		g.Update(i, func(st *NodeState) {
			st.TrendVPI = trend
			st.HB.SmoothedVPI = trend
			st.HB.Lendable = lend
			st.HB.BatchThreads = used
			st.MissedHB = 0
			st.Suspect = false
			if st.TrendVPI >= 25 {
				st.Hot++
			} else {
				st.Hot = 0
			}
		})
	case 1: // placement booking
		threads := 1 + rng.intn(6)
		g.Update(i, func(st *NodeState) {
			if st.HB.UsedThreads()+threads <= st.HB.CapacityThreads {
				st.HB.BatchPods++
				st.HB.BatchThreads += threads
			}
		})
	case 2: // service booking
		threads := 2 + rng.intn(4)
		g.Update(i, func(st *NodeState) {
			if st.HB.UsedThreads()+threads <= st.HB.CapacityThreads {
				st.HB.ServicePods++
				st.HB.ServiceThreads += threads
			}
		})
	case 3: // partition: heartbeats stop arriving
		g.Update(i, func(st *NodeState) {
			st.MissedHB++
			if !st.Dead {
				st.Suspect = st.MissedHB >= 3
			}
		})
	case 4: // death verdict
		g.Update(i, func(st *NodeState) {
			st.Dead = true
			st.Suspect = true
		})
	case 5: // reboot / rejoin: fresh entry
		g.Reset(i, NodeState{ID: i, HB: Heartbeat{CapacityThreads: 8 + 8*rng.intn(2)}})
	case 6: // eviction re-arm
		g.Update(i, func(st *NodeState) { st.Hot = 0 })
	}
}

// TestRegistryAggregatesDifferential drives registries through a scripted
// chaos schedule (crashes, partitions, reboots, placements, heartbeats)
// and asserts after every round that (a) the delta-maintained aggregates
// equal a from-scratch recompute and (b) every placer's sharded PlaceReg
// decision equals its full-rescan Place on the same states — across shard
// sizes from one node per shard to one shard for the whole fleet.
func TestRegistryAggregatesDifferential(t *testing.T) {
	const nNodes = 77
	for _, shardSize := range []int{1, 5, 32, 4096} {
		rng := lcg(42) // same schedule for every shard size
		g := newRegistry(nNodes, shardSize)
		for i := 0; i < nNodes; i++ {
			g.Reset(i, NodeState{ID: i, HB: Heartbeat{CapacityThreads: 8 + 8*(i%2)}})
		}
		placers := []Placer{BinPack{}, VPIAware{}, ScoringPlacer{}}
		for round := 0; round < 60; round++ {
			for m := 0; m < 10; m++ {
				chaosMutate(g, &rng, rng.intn(nNodes))
			}
			free, hot, suspect, dead, minTrend := refAggregates(g.States())
			if g.FreeThreads() != free || g.HotNodes() != hot ||
				g.SuspectNodes() != suspect || g.DeadNodes() != dead {
				t.Fatalf("shard %d round %d: aggregates (free %d hot %d suspect %d dead %d) != reference (%d %d %d %d)",
					shardSize, round, g.FreeThreads(), g.HotNodes(), g.SuspectNodes(), g.DeadNodes(),
					free, hot, suspect, dead)
			}
			if g.MinTrendVPI() != minTrend {
				t.Fatalf("shard %d round %d: min trend %g != reference %g",
					shardSize, round, g.MinTrendVPI(), minTrend)
			}
			for threads := 1; threads <= 20; threads += 6 {
				req := PodRequest{Threads: threads}
				if got, want := g.AnyNodeCouldFit(req), anyNodeCouldFit(g.States(), req); got != want {
					t.Fatalf("shard %d round %d: AnyNodeCouldFit(%d) = %v, reference %v",
						shardSize, round, threads, got, want)
				}
			}
			for _, pl := range placers {
				rp := pl.(registryPlacer)
				for _, req := range []PodRequest{
					{Threads: 1 + round%5},
					{Threads: 2 + round%7, Guaranteed: true},
					{Threads: 4},
				} {
					want := pl.Place(g.States(), req)
					got := rp.PlaceReg(g, req)
					if got != want {
						t.Fatalf("shard %d round %d: %s PlaceReg(%+v) = %d, full rescan %d",
							shardSize, round, pl.Name(), req, got, want)
					}
				}
			}
		}
	}
}

// TestAnyNodeCouldFitSkipsDead pins the bugfix: a fleet whose only
// capacity-capable nodes are permanently dead can never place the pod and
// must say so, instead of classifying it "no capacity right now" and
// retrying forever. Node 0 is alive but undersized; every node big enough
// is dead.
func TestAnyNodeCouldFitSkipsDead(t *testing.T) {
	states := []NodeState{
		{ID: 0, HB: Heartbeat{CapacityThreads: 4}},
		{ID: 1, HB: Heartbeat{CapacityThreads: 16}, Dead: true},
		{ID: 2, HB: Heartbeat{CapacityThreads: 16}, Dead: true},
	}
	req := PodRequest{Guaranteed: true, Threads: 8}
	if anyNodeCouldFit(states, req) {
		t.Fatal("anyNodeCouldFit counted dead nodes as placeable capacity")
	}
	if !anyNodeCouldFit(states, PodRequest{Threads: 4}) {
		t.Fatal("anyNodeCouldFit rejected a pod the live node could hold")
	}
	g := newRegistry(len(states), 2)
	for i, st := range states {
		g.Reset(i, st)
	}
	if g.AnyNodeCouldFit(req) {
		t.Fatal("Registry.AnyNodeCouldFit counted dead nodes as placeable capacity")
	}
	if !g.AnyNodeCouldFit(PodRequest{Threads: 4}) {
		t.Fatal("Registry.AnyNodeCouldFit rejected a pod the live node could hold")
	}
}
