package cluster

import (
	"fmt"
	"sort"
	"strings"

	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/rng"
	"github.com/holmes-colocation/holmes/internal/scenario"
	"github.com/holmes-colocation/holmes/internal/stats"
	"github.com/holmes-colocation/holmes/internal/trace"
	"github.com/holmes-colocation/holmes/internal/traffic"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

// trafficController is the control-plane side of the open-loop traffic
// plane: it compiles the spec's topology into arrival processes, routes
// each round's arrivals through the per-service balancers, reconciles
// queue estimates against replica completion counters, and runs the
// horizontal autoscalers. Every step executes serially inside the round
// loop against control-plane state, so — like placement and
// reconciliation — the traffic plane is byte-identical at any worker
// count. All methods are nil-receiver-safe: a spec without a topology
// simply has no traffic plane.
type trafficController struct {
	hbNs   int64
	warmup int
	sloNs  float64
	tracer *runTracer
	store  *obs.Store // nil without an observability plane

	services []*trafficService

	// Fleet-utilization accounting (whole-node busy cycles per round,
	// split by spike/trough classification of the round).
	nodeRef    []*Node
	prevBusy   []float64
	freqGHz    float64
	cpusPer    int
	roundSpike bool

	spikeUtilSum, troughUtilSum float64
	spikeRounds, troughRounds   int
}

// trafficService is one replicated service's control-plane state.
type trafficService struct {
	spec scenario.ReplicatedService
	prog scenario.TrafficProgram
	proc *traffic.Process
	gen  *traffic.OpGen
	bal  *traffic.Balancer
	sc   *traffic.Autoscaler
	src  *rng.Source // intra-round arrival offsets

	replicas map[string]*trafficReplica
	nextIdx  int
	pending  int // replica pods queued but not yet placed

	// Admission-window queue signal, captured at the end of inject: the
	// per-service outstanding depth (carried backlog + this round's
	// dispatches) and the routable count it spread over. Post-reconcile
	// depth is ~0 whenever replicas keep up, so this is the congestion
	// signal the autoscaler keys on.
	lastDemand   int64
	lastRoutable int

	// Accounting for replicas no longer registered (retired or lost).
	retiredCompleted int64
	lost             int64
	failedPlacements int

	// Measured-window SLI deltas split by the round's spike status.
	spikeGood, spikeBad   int64
	troughGood, troughBad int64

	peakReplicas int
}

// trafficReplica is one replica booking. It implements traffic.Replica:
// Submit schedules the request's execution on the replica's node at
// offsetNs into the node's current round (node-local time, so slow or
// rebooted nodes keep a coherent clock).
type trafficReplica struct {
	name string
	idx  int
	ts   *trafficService
	node int
	n    *Node
	ns   *nodeService

	submitted     int64
	completedSeen int64
	prevQ         int64
	prevBad       int64
	draining      bool
}

func (r *trafficReplica) Submit(op ycsb.Op, offsetNs int64) {
	r.submitted++
	s := r.ns
	r.n.m.Schedule(r.n.m.Now()+offsetNs, func(t int64) { s.svc.Submit(op, t) })
}

// outstanding is the replica's in-flight estimate against the last
// completion count the control plane has seen.
func (r *trafficReplica) outstanding() int64 { return r.submitted - r.completedSeen }

// newTrafficController compiles the spec's topology; returns nil (no
// traffic plane) when the spec has none.
func newTrafficController(spec Spec, tracer *runTracer, p *obs.Plane, hbNs int64, warmupRounds int) (*trafficController, error) {
	if spec.Topology == nil {
		return nil, nil
	}
	tc := &trafficController{
		hbNs:     hbNs,
		warmup:   warmupRounds,
		sloNs:    spec.sloNs(),
		tracer:   tracer,
		prevBusy: make([]float64, spec.Nodes),
		nodeRef:  make([]*Node, spec.Nodes),
	}
	if p != nil {
		tc.store = p.Store
	}
	for _, rs := range spec.Topology.Services {
		prog, ok := spec.Topology.Program(rs.Program)
		if !ok {
			return nil, fmt.Errorf("cluster: service %s references unknown program %q", rs.Name, rs.Program)
		}
		seed := rng.DeriveSeed(spec.Seed, "traffic", rs.Name)
		gen, err := traffic.NewOpGen(prog, rs, seed)
		if err != nil {
			return nil, err
		}
		tc.services = append(tc.services, &trafficService{
			spec:     rs,
			prog:     prog,
			proc:     traffic.NewProcess(prog, rng.DeriveSeed(seed, "arrivals")),
			gen:      gen,
			bal:      traffic.NewBalancer(rs.QueueCapacity()),
			sc:       traffic.NewAutoscaler(rs.Autoscaler),
			src:      rng.New(rng.DeriveSeed(seed, "offsets")),
			replicas: map[string]*trafficReplica{},
		})
	}
	return tc, nil
}

// newReplicaPending queues one fresh replica pod for placement.
func (tc *trafficController) newReplicaPending(ts *trafficService) *pendingPod {
	idx := ts.nextIdx
	ts.nextIdx++
	ts.pending++
	rep := &trafficReplica{name: fmt.Sprintf("%s/%d", ts.spec.Name, idx), idx: idx, ts: ts}
	return &pendingPod{
		req: PodRequest{Name: rep.name, Guaranteed: true, Threads: serviceThreads(ts.spec.Store)},
		rep: rep,
	}
}

// initialPods returns the topology's initial replica pods in spec order.
func (tc *trafficController) initialPods() []*pendingPod {
	if tc == nil {
		return nil
	}
	var pods []*pendingPod
	for _, ts := range tc.services {
		for i := 0; i < ts.spec.Replicas; i++ {
			pods = append(pods, tc.newReplicaPending(ts))
		}
	}
	return pods
}

// place books a freshly placed replica: the node launched it, the
// balancer starts routing to it.
func (tc *trafficController) place(p *pendingPod, target int, n *Node) error {
	rep := p.rep
	ts := rep.ts
	if err := n.PlaceReplica(rep.name, ts.spec.Name, ts.spec); err != nil {
		return err
	}
	rep.node = target
	rep.n = n
	rep.ns = n.services[rep.name]
	ts.pending--
	ts.replicas[rep.name] = rep
	ts.bal.Add(rep.name, rep)
	return nil
}

// placementFailed drops a replica pod that exhausted its placement
// retries; the autoscaler or the min-replica floor will requeue demand.
func (tc *trafficController) placementFailed(p *pendingPod) {
	p.rep.ts.pending--
	p.rep.ts.failedPlacements++
}

// keepsReplica reports whether the control plane still books a replica
// of that name on node i — the fencing predicate for rejoining nodes.
func (tc *trafficController) keepsReplica(name string, node int) bool {
	if tc == nil {
		return false
	}
	for _, ts := range tc.services {
		if rep := ts.replicas[name]; rep != nil {
			return rep.node == node
		}
	}
	return false
}

// inject draws and routes this round's arrivals for every service. It
// runs after the placement pass (replicas placed this round serve
// immediately) and before the nodes advance, so every scheduled request
// lands inside the round's simulated window.
func (tc *trafficController) inject(r int) {
	if tc == nil {
		return
	}
	t0 := int64(r) * tc.hbNs
	tc.roundSpike = false
	for _, ts := range tc.services {
		n := ts.proc.Arrivals(t0, tc.hbNs)
		if ts.proc.InSpike(t0 + tc.hbNs/2) {
			tc.roundSpike = true
		}
		for i := 0; i < n; i++ {
			offset := ts.src.Int63n(tc.hbNs)
			ts.bal.Dispatch(ts.gen.Next(), offset)
		}
		ts.lastDemand = ts.bal.TotalOutstanding()
		ts.lastRoutable = ts.bal.Routable()
		if tc.store != nil {
			tc.store.Series("traffic/"+ts.spec.Name+"/arrivals").Append(t0, float64(n))
			tc.store.Series("traffic/"+ts.spec.Name+"/rate_rps").Append(t0, ts.proc.Rate(t0+tc.hbNs/2))
			tc.store.Series("traffic/"+ts.spec.Name+"/queue").Append(t0, float64(ts.lastDemand))
		}
	}
}

// nodeLost removes every replica booked on a node the control plane now
// considers gone: their in-flight requests are accounted as lost, and
// enough fresh replicas are queued to restore the service's minimum.
func (tc *trafficController) nodeLost(i, r int) []*pendingPod {
	if tc == nil {
		return nil
	}
	var pods []*pendingPod
	for _, ts := range tc.services {
		names := make([]string, 0, len(ts.replicas))
		for name, rep := range ts.replicas {
			if rep.node == i {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			rep := ts.replicas[name]
			ts.lost += rep.outstanding()
			ts.retiredCompleted += rep.completedSeen
			ts.bal.Remove(name)
			delete(ts.replicas, name)
			tc.tracer.replicaRetire(name, r, i, "node-lost")
		}
		want := ts.spec.MinReplicas() - len(ts.replicas) - ts.pending
		for k := 0; k < want; k++ {
			pods = append(pods, tc.newReplicaPending(ts))
		}
	}
	return pods
}

// postRound reconciles the traffic plane after the nodes advanced and
// the registry refreshed: balancer health from the detector's view,
// queue estimates from completion counters, spike/trough SLI deltas,
// draining-replica retirement, fleet-utilization accounting, series
// rollups, and the autoscaler decisions. Returns freshly queued replica
// pods (scale-ups).
func (tc *trafficController) postRound(r int, nodes []*Node, states []NodeState, down []bool, paging bool) []*pendingPod {
	if tc == nil {
		return nil
	}
	now := int64(r) * tc.hbNs
	var pods []*pendingPod
	for _, ts := range tc.services {
		names := make([]string, 0, len(ts.replicas))
		for name := range ts.replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rep := ts.replicas[name]
			stale := rep.n != nodes[rep.node] // node rebooted under the booking (degradation off)
			if stale || down[rep.node] || states[rep.node].Dead || states[rep.node].Suspect {
				ts.bal.SetHealthy(name, false)
				continue
			}
			ts.bal.SetHealthy(name, true)
			rep.completedSeen = rep.ns.svc.Completed()
			ts.bal.SetOutstanding(name, rep.outstanding())
			lat := rep.ns.svc.Latencies()
			q, bad := lat.Count(), lat.CountAbove(tc.sloNs)
			dq, db := q-rep.prevQ, bad-rep.prevBad
			if dq < 0 {
				dq = 0
			}
			if db < 0 {
				db = 0
			}
			if db > dq {
				db = dq
			}
			rep.prevQ, rep.prevBad = q, bad
			if r >= tc.warmup {
				if tc.roundSpike {
					ts.spikeGood += dq - db
					ts.spikeBad += db
				} else {
					ts.troughGood += dq - db
					ts.troughBad += db
				}
			}
			// A draining replica with nothing in flight retires now.
			if rep.draining && rep.outstanding() == 0 {
				if err := rep.n.RetireReplica(name); err == nil {
					ts.retiredCompleted += rep.completedSeen
					ts.bal.Remove(name)
					delete(ts.replicas, name)
					tc.tracer.replicaRetire(name, r, rep.node, "scale-down")
				}
			}
		}

		routable := ts.bal.Routable()
		if routable+ts.pending > ts.peakReplicas {
			ts.peakReplicas = routable + ts.pending
		}
		perReplica := float64(ts.lastDemand)
		if ts.lastRoutable > 0 {
			perReplica /= float64(ts.lastRoutable)
		}
		switch ts.sc.Observe(r, routable+ts.pending, perReplica, paging) {
		case 1:
			p := tc.newReplicaPending(ts)
			pods = append(pods, p)
			tc.tracer.replicaScaleUp(ts.spec.Name, r, perReplica)
		case -1:
			// Drain the youngest routable replica (least cache warmth to
			// lose is not modeled; youngest-first mirrors the reconciler).
			var victim *trafficReplica
			for _, name := range names {
				rep := ts.replicas[name]
				if rep == nil || rep.draining || rep.ns == nil {
					continue
				}
				if victim == nil || rep.idx > victim.idx {
					victim = rep
				}
			}
			if victim != nil {
				victim.draining = true
				ts.bal.SetDraining(victim.name, true)
				tc.tracer.replicaScaleDown(victim.name, r, victim.node, perReplica)
			}
		}
		if tc.store != nil {
			tc.store.Series("autoscaler/"+ts.spec.Name+"/replicas").Append(now, float64(routable+ts.pending))
		}
	}

	// Whole-node busy-cycle deltas -> fleet utilization for the round,
	// attributed to the spike or trough bucket inside the measured window.
	var deltaSum float64
	for i, n := range nodes {
		if tc.nodeRef[i] != n {
			tc.nodeRef[i] = n
			tc.prevBusy[i] = 0
			tc.freqGHz = n.m.Config().FreqGHz
			tc.cpusPer = n.m.Topology().LogicalCPUs()
		}
		if down[i] {
			continue
		}
		busy := n.totalBusy()
		d := busy - tc.prevBusy[i]
		tc.prevBusy[i] = busy
		if d > 0 {
			deltaSum += d
		}
	}
	util := 0.0
	if tc.freqGHz > 0 {
		util = deltaSum / (tc.freqGHz * float64(tc.hbNs) * float64(tc.cpusPer*len(nodes)))
	}
	if r >= tc.warmup {
		if tc.roundSpike {
			tc.spikeUtilSum += util
			tc.spikeRounds++
		} else {
			tc.troughUtilSum += util
			tc.troughRounds++
		}
	}
	if tc.store != nil {
		tc.store.Series("traffic/fleet_util").Append(now, util)
	}
	return pods
}

// TrafficServiceResult is one replicated service's measured outcome.
type TrafficServiceResult struct {
	Name    string
	Store   string
	Program string
	// Replicas is the final routable replica count; PeakReplicas the
	// highest count (placed + pending) any round reached.
	Replicas     int
	PeakReplicas int
	ScaleUps     int
	ScaleDowns   int
	// Request accounting over the whole run (warmup included). The
	// conservation identity Arrivals = Completions + Drops + Lost +
	// InFlight holds by construction; Conserved in TrafficResult checks it.
	Arrivals    int64
	Completions int64
	Drops       int64
	Lost        int64
	InFlight    int64
	// Latency over the measured window, merged across live replicas.
	Queries       int64
	Summary       stats.Summary
	SLOViolations float64
	// Spike/trough SLO-violation split (measured window, rounds
	// classified by the arrival process's spike schedule).
	SpikeQueries     int64
	SpikeSLO         float64
	TroughQueries    int64
	TroughSLO        float64
	FailedPlacements int
}

// TrafficResult aggregates the traffic plane's outcome.
type TrafficResult struct {
	Services                                     []TrafficServiceResult
	Arrivals, Completions, Drops, Lost, InFlight int64
	// Conserved asserts the request-accounting identity fleet-wide.
	Conserved            bool
	ScaleUps, ScaleDowns int
	// SpikeUtil/TroughUtil are mean whole-fleet busy fractions over the
	// measured window's spike vs trough rounds.
	SpikeUtil, TroughUtil     float64
	SpikeRounds, TroughRounds int
}

// collect finalizes the traffic plane into the run result.
func (tc *trafficController) collect(res *Result, nodes []*Node, down []bool) {
	if tc == nil {
		return
	}
	tr := &TrafficResult{}
	for _, ts := range tc.services {
		sr := TrafficServiceResult{
			Name:             ts.spec.Name,
			Store:            ts.spec.Store,
			Program:          ts.spec.Program,
			Replicas:         ts.bal.Routable(),
			PeakReplicas:     ts.peakReplicas,
			ScaleUps:         ts.sc.Ups(),
			ScaleDowns:       ts.sc.Downs(),
			Arrivals:         ts.bal.Arrivals(),
			Drops:            ts.bal.Drops(),
			Lost:             ts.lost,
			Completions:      ts.retiredCompleted,
			FailedPlacements: ts.failedPlacements,
		}
		lat := stats.NewHistogram(1e3, 1e10, 60)
		names := make([]string, 0, len(ts.replicas))
		for name := range ts.replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rep := ts.replicas[name]
			live := rep.n == nodes[rep.node] && !down[rep.node]
			if live {
				rep.completedSeen = rep.ns.svc.Completed()
				_ = lat.Merge(rep.ns.svc.Latencies())
			}
			sr.Completions += rep.completedSeen
			sr.InFlight += rep.outstanding()
		}
		sr.Queries = lat.Count()
		sr.Summary = lat.Summarize()
		sr.SLOViolations = lat.FractionAbove(tc.sloNs)
		sr.SpikeQueries = ts.spikeGood + ts.spikeBad
		if sr.SpikeQueries > 0 {
			sr.SpikeSLO = float64(ts.spikeBad) / float64(sr.SpikeQueries)
		}
		sr.TroughQueries = ts.troughGood + ts.troughBad
		if sr.TroughQueries > 0 {
			sr.TroughSLO = float64(ts.troughBad) / float64(sr.TroughQueries)
		}
		tr.Services = append(tr.Services, sr)
		tr.Arrivals += sr.Arrivals
		tr.Completions += sr.Completions
		tr.Drops += sr.Drops
		tr.Lost += sr.Lost
		tr.InFlight += sr.InFlight
		tr.ScaleUps += sr.ScaleUps
		tr.ScaleDowns += sr.ScaleDowns
	}
	tr.Conserved = tr.Arrivals == tr.Completions+tr.Drops+tr.Lost+tr.InFlight
	if tc.spikeRounds > 0 {
		tr.SpikeUtil = tc.spikeUtilSum / float64(tc.spikeRounds)
	}
	if tc.troughRounds > 0 {
		tr.TroughUtil = tc.troughUtilSum / float64(tc.troughRounds)
	}
	tr.SpikeRounds = tc.spikeRounds
	tr.TroughRounds = tc.troughRounds
	res.Traffic = tr
}

// renderTraffic appends the traffic plane's section to a rendered run.
func (tr *TrafficResult) render(b *strings.Builder) {
	tb := trace.NewTable("traffic plane: replicated services under open-loop load",
		"service", "program", "replicas", "arrivals", "done", "drop", "lost", "p99 us", "SLO viol", "spike SLO", "trough SLO")
	for _, s := range tr.Services {
		p99 := "n/a"
		slo := "n/a"
		if s.Summary.Valid {
			p99 = fmt.Sprintf("%.1f", s.Summary.P99/1e3)
			slo = fmt.Sprintf("%.2f%%", 100*s.SLOViolations)
		}
		tb.AddRow(s.Name, s.Program,
			fmt.Sprintf("%d (peak %d)", s.Replicas, s.PeakReplicas),
			s.Arrivals, s.Completions, s.Drops, s.Lost, p99, slo,
			fmt.Sprintf("%.2f%%", 100*s.SpikeSLO),
			fmt.Sprintf("%.2f%%", 100*s.TroughSLO))
	}
	b.WriteString("\n")
	b.WriteString(tb.String())
	conserved := "conserved"
	if !tr.Conserved {
		conserved = "NOT CONSERVED"
	}
	fmt.Fprintf(b, "\nrequest accounting: %d arrivals = %d completed + %d dropped + %d lost + %d in flight (%s)\n",
		tr.Arrivals, tr.Completions, tr.Drops, tr.Lost, tr.InFlight, conserved)
	fmt.Fprintf(b, "autoscaler: %d scale-ups, %d scale-downs; fleet utilization %.1f%% in spikes (%d rounds) vs %.1f%% in troughs (%d rounds)\n",
		tr.ScaleUps, tr.ScaleDowns,
		100*tr.SpikeUtil, tr.SpikeRounds, 100*tr.TroughUtil, tr.TroughRounds)
}
