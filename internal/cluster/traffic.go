package cluster

import (
	"fmt"
	"sort"
	"strings"

	"github.com/holmes-colocation/holmes/internal/lcservice"
	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/rng"
	"github.com/holmes-colocation/holmes/internal/scenario"
	"github.com/holmes-colocation/holmes/internal/stats"
	"github.com/holmes-colocation/holmes/internal/trace"
	"github.com/holmes-colocation/holmes/internal/traffic"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

// trafficController is the control-plane side of the open-loop traffic
// plane: it compiles the spec's topology into arrival processes, routes
// each round's arrivals through the per-service balancers, reconciles
// queue estimates against replica completion counters, and runs the
// horizontal autoscalers. Every step executes serially inside the round
// loop against control-plane state, so — like placement and
// reconciliation — the traffic plane is byte-identical at any worker
// count. All methods are nil-receiver-safe: a spec without a topology
// simply has no traffic plane.
//
// When a service carries a ResilienceSpec the controller also runs the
// request-path resilience layer: per-request deadlines detected at the
// replicas, client-side retries in round-granular cohorts under a retry
// budget, a per-service circuit breaker gating every presentation, and
// replica-side load shedding. The conservation identity extends to
//
//	arrivals = completions + drops + shed + expired + lost + in-flight
//
// with retries a separate, deliberately non-conserved amplification
// counter (every retry is a fresh arrival; the attempt it replaces was
// already accounted as shed, expired, dropped or lost).
type trafficController struct {
	hbNs   int64
	warmup int
	sloNs  float64
	tracer *runTracer
	store  *obs.Store // nil without an observability plane

	services  []*trafficService
	resilient bool // any service runs the resilience layer

	// Fleet-utilization accounting (whole-node busy cycles per round,
	// split by spike/trough classification of the round).
	nodeRef    []*Node
	prevBusy   []float64
	freqGHz    float64
	cpusPer    int
	roundSpike bool

	spikeUtilSum, troughUtilSum float64
	spikeRounds, troughRounds   int

	// Per-round fleet series for verdicts that need goodput trajectories
	// (the storm experiment's recovery bound): first-attempt arrivals,
	// released retries and observed completions, indexed by round.
	roundArrivals    []int64
	roundRetries     []int64
	roundCompletions []int64
	curFirst         int64
	curRetries       int64
}

// trafficService is one replicated service's control-plane state.
type trafficService struct {
	spec scenario.ReplicatedService
	prog scenario.TrafficProgram
	proc *traffic.Process
	gen  *traffic.OpGen
	bal  *traffic.Balancer
	sc   *traffic.Autoscaler
	src  *rng.Source // intra-round arrival offsets

	replicas map[string]*trafficReplica
	nextIdx  int
	pending  int // replica pods queued but not yet placed

	// Request-path resilience (zero-valued and inert without a
	// ResilienceSpec on the service).
	resilient  bool
	deadlineNs int64
	attempts   int
	policy     traffic.RetryPolicy
	budget     *traffic.RetryBudget
	breaker    *traffic.Breaker
	retryQ     traffic.RetryQueue
	retrySrc   *rng.Source // jitter draws, one stream per service
	// failsByA accumulates this round's client-visible retryable
	// failures by the attempt that suffered them: admission drops at
	// inject, shed/expired deltas at reconcile, write-offs at node loss.
	// postRound converts it into retry cohorts and resets it.
	failsByA  [traffic.MaxAttempts]int64
	retries   int64 // retry presentations (arrivals beyond the first try)
	exhausted int64 // failures past the attempt cap
	// Previous-round cumulative counters for per-round deltas.
	prevDrops        int64
	prevDropsBreaker int64
	prevLost         int64

	// Admission-window queue signal, captured at the end of inject: the
	// per-service outstanding depth (carried backlog + this round's
	// dispatches) and the routable count it spread over. Post-reconcile
	// depth is ~0 whenever replicas keep up, so this is the congestion
	// signal the autoscaler keys on.
	lastDemand   int64
	lastRoutable int

	// Accounting for replicas no longer registered (retired or lost).
	retiredCompleted int64
	retiredShed      int64
	retiredExpired   int64
	lost             int64
	failedPlacements int

	// Measured-window SLI deltas split by the round's spike status.
	spikeGood, spikeBad   int64
	troughGood, troughBad int64

	peakReplicas int
}

// trafficReplica is one replica booking. It implements traffic.Replica:
// Submit schedules the request's execution on the replica's node at
// offsetNs into the node's current round (node-local time, so slow or
// rebooted nodes keep a coherent clock).
//
// Outcome accounting is per attempt: the control plane increments
// subByA at dispatch, the node's simulation resolves each request into
// doneByA/expByA/shedByA via the SubmitCB callback, and the control
// plane snapshots the *SeenByA arrays once per round — the only
// cross-side handoff, synchronized by the advance barrier exactly like
// the service's own counters.
type trafficReplica struct {
	name string
	idx  int
	ts   *trafficService
	node int
	n    *Node
	ns   *nodeService

	submitted int64
	subByA    [traffic.MaxAttempts]int64
	// Written from the serving node's simulation callbacks:
	doneByA [traffic.MaxAttempts]int64
	expByA  [traffic.MaxAttempts]int64
	shedByA [traffic.MaxAttempts]int64
	// Control-plane snapshots of the above:
	doneSeenByA [traffic.MaxAttempts]int64
	expSeenByA  [traffic.MaxAttempts]int64
	shedSeenByA [traffic.MaxAttempts]int64

	completedSeen int64 // sum of doneSeenByA
	shedSeen      int64
	expiredSeen   int64
	prevQ         int64
	prevBad       int64
	draining      bool
}

func (r *trafficReplica) Submit(op ycsb.Op, offsetNs int64, attempt int) {
	r.submitted++
	r.subByA[attempt]++
	s := r.ns
	rep := r
	r.n.m.Schedule(r.n.m.Now()+offsetNs, func(t int64) {
		s.svc.SubmitCB(op, t, func(oc lcservice.Outcome, _ int64) {
			switch oc {
			case lcservice.OutcomeCompleted:
				rep.doneByA[attempt]++
			case lcservice.OutcomeExpired:
				rep.expByA[attempt]++
			case lcservice.OutcomeShed:
				rep.shedByA[attempt]++
			}
		})
	})
}

// outstanding is the replica's in-flight estimate against the resolved
// counts the control plane has seen.
func (r *trafficReplica) outstanding() int64 {
	return r.submitted - r.completedSeen - r.shedSeen - r.expiredSeen
}

// refreshSeen snapshots the replica's resolved counters, returning the
// round's completion/shed/expired deltas. When fails is non-nil the
// shed+expired deltas are also charged to it per attempt (the
// client-side timeout/failure detection feed).
func (r *trafficReplica) refreshSeen(fails *[traffic.MaxAttempts]int64) (dDone, dShed, dExp int64) {
	for a := 0; a < traffic.MaxAttempts; a++ {
		dd := r.doneByA[a] - r.doneSeenByA[a]
		de := r.expByA[a] - r.expSeenByA[a]
		ds := r.shedByA[a] - r.shedSeenByA[a]
		r.doneSeenByA[a] = r.doneByA[a]
		r.expSeenByA[a] = r.expByA[a]
		r.shedSeenByA[a] = r.shedByA[a]
		dDone += dd
		dExp += de
		dShed += ds
		if fails != nil {
			fails[a] += de + ds
		}
	}
	r.completedSeen += dDone
	r.shedSeen += dShed
	r.expiredSeen += dExp
	return dDone, dShed, dExp
}

// newTrafficController compiles the spec's topology; returns nil (no
// traffic plane) when the spec has none.
func newTrafficController(spec Spec, tracer *runTracer, p *obs.Plane, hbNs int64, warmupRounds int) (*trafficController, error) {
	if spec.Topology == nil {
		return nil, nil
	}
	tc := &trafficController{
		hbNs:     hbNs,
		warmup:   warmupRounds,
		sloNs:    spec.sloNs(),
		tracer:   tracer,
		prevBusy: make([]float64, spec.Nodes),
		nodeRef:  make([]*Node, spec.Nodes),
	}
	if p != nil {
		tc.store = p.Store
	}
	for _, rs := range spec.Topology.Services {
		prog, ok := spec.Topology.Program(rs.Program)
		if !ok {
			return nil, fmt.Errorf("cluster: service %s references unknown program %q", rs.Name, rs.Program)
		}
		seed := rng.DeriveSeed(spec.Seed, "traffic", rs.Name)
		gen, err := traffic.NewOpGen(prog, rs, seed)
		if err != nil {
			return nil, err
		}
		ts := &trafficService{
			spec:     rs,
			prog:     prog,
			proc:     traffic.NewProcess(prog, rng.DeriveSeed(seed, "arrivals")),
			gen:      gen,
			bal:      traffic.NewBalancer(rs.QueueCapacity()),
			sc:       traffic.NewAutoscaler(rs.Autoscaler),
			src:      rng.New(rng.DeriveSeed(seed, "offsets")),
			replicas: map[string]*trafficReplica{},
			attempts: 1,
		}
		if rz := rs.Resilience; rz != nil {
			ts.resilient = true
			tc.resilient = true
			ts.deadlineNs = int64(rz.DeadlineMs * 1e6)
			ts.attempts = rz.Attempts()
			ts.policy = traffic.RetryPolicy{
				Attempts:      rz.Attempts(),
				BackoffRounds: rz.Backoff(),
				JitterRounds:  rz.Jitter(),
			}
			ts.budget = traffic.NewRetryBudget(rz.RetryBudget, rz.BudgetWindow())
			ts.breaker = traffic.NewBreaker(traffic.BreakerConfig{
				FailureRate:  rz.BreakerFailureRate,
				WindowRounds: rz.BreakerWindowRounds,
				MinVolume:    int64(rz.BreakerMinVolume),
				OpenRounds:   rz.BreakerOpenRounds,
				Probes:       rz.BreakerProbes,
			})
			ts.retrySrc = rng.New(rng.DeriveSeed(seed, "retry-jitter"))
		}
		tc.services = append(tc.services, ts)
	}
	return tc, nil
}

// newReplicaPending queues one fresh replica pod for placement.
func (tc *trafficController) newReplicaPending(ts *trafficService) *pendingPod {
	idx := ts.nextIdx
	ts.nextIdx++
	ts.pending++
	rep := &trafficReplica{name: fmt.Sprintf("%s/%d", ts.spec.Name, idx), idx: idx, ts: ts}
	return &pendingPod{
		req: PodRequest{Name: rep.name, Guaranteed: true, Threads: serviceThreads(ts.spec.Store)},
		rep: rep,
	}
}

// initialPods returns the topology's initial replica pods in spec order.
func (tc *trafficController) initialPods() []*pendingPod {
	if tc == nil {
		return nil
	}
	var pods []*pendingPod
	for _, ts := range tc.services {
		for i := 0; i < ts.spec.Replicas; i++ {
			pods = append(pods, tc.newReplicaPending(ts))
		}
	}
	return pods
}

// place books a freshly placed replica: the node launched it, the
// balancer starts routing to it. Resilient services push their admission
// policy (concurrency limit, deadline) onto the replica's service.
func (tc *trafficController) place(p *pendingPod, target int, n *Node) error {
	rep := p.rep
	ts := rep.ts
	if err := n.PlaceReplica(rep.name, ts.spec.Name, ts.spec); err != nil {
		return err
	}
	rep.node = target
	rep.n = n
	rep.ns = n.services[rep.name]
	if rz := ts.spec.Resilience; rz != nil {
		rep.ns.svc.SetAdmission(int64(rz.ConcurrencyLimit), ts.deadlineNs)
	}
	ts.pending--
	ts.replicas[rep.name] = rep
	ts.bal.Add(rep.name, rep)
	return nil
}

// placementFailed drops a replica pod that exhausted its placement
// retries; the autoscaler or the min-replica floor will requeue demand.
func (tc *trafficController) placementFailed(p *pendingPod) {
	p.rep.ts.pending--
	p.rep.ts.failedPlacements++
}

// keepsReplica reports whether the control plane still books a replica
// of that name on node i — the fencing predicate for rejoining nodes.
func (tc *trafficController) keepsReplica(name string, node int) bool {
	if tc == nil {
		return false
	}
	for _, ts := range tc.services {
		if rep := ts.replicas[name]; rep != nil {
			return rep.node == node
		}
	}
	return false
}

// present routes one presentation (a fresh arrival or a released retry)
// through the breaker and the balancer, charging admission drops to the
// attempt's failure account for retry detection.
func (ts *trafficService) present(tc *trafficController, attempt int) {
	if !ts.breaker.Allow() {
		// Client-side fast-fail: counted as an arrival + drop, never
		// retried — the whole point of the breaker is to stop hammering.
		ts.bal.RejectBreaker()
		return
	}
	offset := ts.src.Int63n(tc.hbNs)
	if _, ok := ts.bal.Dispatch(ts.gen.Next(), offset, attempt); !ok && ts.resilient {
		ts.failsByA[attempt]++
	}
}

// inject draws and routes this round's arrivals for every service. It
// runs after the placement pass (replicas placed this round serve
// immediately) and before the nodes advance, so every scheduled request
// lands inside the round's simulated window. Due retry cohorts release
// first (they are older requests), then the round's fresh arrivals.
func (tc *trafficController) inject(r int) {
	if tc == nil {
		return
	}
	t0 := int64(r) * tc.hbNs
	tc.roundSpike = false
	tc.curFirst, tc.curRetries = 0, 0
	for _, ts := range tc.services {
		n := ts.proc.Arrivals(t0, tc.hbNs)
		if ts.proc.InSpike(t0 + tc.hbNs/2) {
			tc.roundSpike = true
		}
		ts.breaker.Tick(r)
		if ts.resilient {
			for _, c := range ts.retryQ.PopDue(r) {
				for k := int64(0); k < c.Count; k++ {
					ts.retries++
					tc.curRetries++
					ts.present(tc, c.Attempt)
				}
			}
		}
		for i := 0; i < n; i++ {
			ts.present(tc, 0)
		}
		tc.curFirst += int64(n)
		ts.lastDemand = ts.bal.TotalOutstanding()
		ts.lastRoutable = ts.bal.Routable()
		if tc.store != nil {
			tc.store.Series("traffic/"+ts.spec.Name+"/arrivals").Append(t0, float64(n))
			tc.store.Series("traffic/"+ts.spec.Name+"/rate_rps").Append(t0, ts.proc.Rate(t0+tc.hbNs/2))
			tc.store.Series("traffic/"+ts.spec.Name+"/queue").Append(t0, float64(ts.lastDemand))
		}
	}
}

// nodeLost removes every replica booked on a node the control plane now
// considers gone: their in-flight requests are accounted as lost, the
// clients that sent them observe timeouts (feeding the retry layer per
// attempt), and enough fresh replicas are queued to restore the
// service's minimum.
func (tc *trafficController) nodeLost(i, r int) []*pendingPod {
	if tc == nil {
		return nil
	}
	var pods []*pendingPod
	for _, ts := range tc.services {
		names := make([]string, 0, len(ts.replicas))
		for name, rep := range ts.replicas {
			if rep.node == i {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			rep := ts.replicas[name]
			if ts.resilient {
				for a := 0; a < traffic.MaxAttempts; a++ {
					lost := rep.subByA[a] - rep.doneSeenByA[a] - rep.expSeenByA[a] - rep.shedSeenByA[a]
					ts.failsByA[a] += lost
				}
			}
			ts.lost += rep.outstanding()
			ts.retiredCompleted += rep.completedSeen
			ts.retiredShed += rep.shedSeen
			ts.retiredExpired += rep.expiredSeen
			ts.bal.Remove(name)
			delete(ts.replicas, name)
			tc.tracer.replicaRetire(name, r, i, "node-lost")
		}
		want := ts.spec.MinReplicas() - len(ts.replicas) - ts.pending
		for k := 0; k < want; k++ {
			pods = append(pods, tc.newReplicaPending(ts))
		}
	}
	return pods
}

// postRound reconciles the traffic plane after the nodes advanced and
// the registry refreshed: balancer health from the detector's view,
// queue estimates from resolved-request counters, spike/trough SLI
// deltas, draining-replica retirement, the resilience layer's round
// step (breaker transitions, budgeted retry scheduling, the "requests"
// SLO feed), fleet-utilization accounting, series rollups, and the
// autoscaler decisions. Returns freshly queued replica pods (scale-ups)
// plus any burn-rate transitions raised by the requests SLO.
func (tc *trafficController) postRound(r int, nodes []*Node, states []NodeState, down []bool, burn *obs.BurnEngine) ([]*pendingPod, []obs.Alert) {
	if tc == nil {
		return nil, nil
	}
	now := int64(r) * tc.hbNs
	paging := burn.Paging()
	var pods []*pendingPod
	var fleetDone, reqGood, reqBad int64
	for _, ts := range tc.services {
		names := make([]string, 0, len(ts.replicas))
		for name := range ts.replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		var dDone, dShed, dExp int64
		for _, name := range names {
			rep := ts.replicas[name]
			stale := rep.n != nodes[rep.node] // node rebooted under the booking (degradation off)
			if stale || down[rep.node] || states[rep.node].Dead || states[rep.node].Suspect {
				ts.bal.SetHealthy(name, false)
				continue
			}
			ts.bal.SetHealthy(name, true)
			var fails *[traffic.MaxAttempts]int64
			if ts.resilient {
				fails = &ts.failsByA
			}
			dd, ds, de := rep.refreshSeen(fails)
			dDone += dd
			dShed += ds
			dExp += de
			ts.bal.SetOutstanding(name, rep.outstanding())
			lat := rep.ns.svc.Latencies()
			q, bad := lat.Count(), lat.CountAbove(tc.sloNs)
			dq, db := q-rep.prevQ, bad-rep.prevBad
			if dq < 0 {
				dq = 0
			}
			if db < 0 {
				db = 0
			}
			if db > dq {
				db = dq
			}
			rep.prevQ, rep.prevBad = q, bad
			if r >= tc.warmup {
				if tc.roundSpike {
					ts.spikeGood += dq - db
					ts.spikeBad += db
				} else {
					ts.troughGood += dq - db
					ts.troughBad += db
				}
			}
			// A draining replica with nothing in flight retires now.
			if rep.draining && rep.outstanding() == 0 {
				if err := rep.n.RetireReplica(name); err == nil {
					ts.retiredCompleted += rep.completedSeen
					ts.retiredShed += rep.shedSeen
					ts.retiredExpired += rep.expiredSeen
					ts.bal.Remove(name)
					delete(ts.replicas, name)
					tc.tracer.replicaRetire(name, r, rep.node, "scale-down")
				}
			}
		}
		fleetDone += dDone

		// Resilience round step: per-round failure deltas drive the
		// breaker, the retry budget accrues this round's successes, and
		// the round's failures become backoff-jittered retry cohorts.
		dDrops := ts.bal.Drops() - ts.prevDrops
		ts.prevDrops = ts.bal.Drops()
		dDen := ts.bal.DropsBreaker() - ts.prevDropsBreaker
		ts.prevDropsBreaker = ts.bal.DropsBreaker()
		dLost := ts.lost - ts.prevLost
		ts.prevLost = ts.lost
		if ts.resilient {
			// The breaker must not feed on its own fast-fails: while
			// half-open, quota-denied presentations would otherwise read
			// as failures and re-trip it forever.
			tripped, closed := ts.breaker.Observe(r, dDone, dShed+dExp+dLost+dDrops-dDen)
			if tripped {
				tc.tracer.breakerOpen(ts.spec.Name, r, ts.breaker.TripRate())
			}
			if closed {
				tc.tracer.breakerClose(ts.spec.Name, r)
			}
			ts.budget.Observe(dDone)
			for a := 0; a < ts.attempts; a++ {
				n := ts.failsByA[a]
				ts.failsByA[a] = 0
				if n == 0 {
					continue
				}
				if a+1 >= ts.attempts {
					ts.exhausted += n
					continue
				}
				grant := ts.budget.Spend(n)
				for k := int64(0); k < grant; k++ {
					ts.retryQ.Add(r+ts.policy.Delay(a, ts.retrySrc), a+1, 1)
				}
			}
			reqGood += dDone
			reqBad += dShed + dExp + dLost + dDrops
			if tc.store != nil {
				tc.store.Series("resilience/"+ts.spec.Name+"/retries").Append(now, float64(ts.retryQ.Pending()))
				tc.store.Series("resilience/"+ts.spec.Name+"/failures").Append(now, float64(dShed+dExp+dLost+dDrops))
				tc.store.Series("resilience/"+ts.spec.Name+"/breaker").Append(now, breakerLevel(ts.breaker.State()))
			}
		}

		routable := ts.bal.Routable()
		if routable+ts.pending > ts.peakReplicas {
			ts.peakReplicas = routable + ts.pending
		}
		perReplica := float64(ts.lastDemand)
		if ts.lastRoutable > 0 {
			perReplica /= float64(ts.lastRoutable)
		}
		switch ts.sc.Observe(r, routable+ts.pending, perReplica, paging) {
		case 1:
			p := tc.newReplicaPending(ts)
			pods = append(pods, p)
			tc.tracer.replicaScaleUp(ts.spec.Name, r, perReplica)
		case -1:
			// Drain the youngest routable replica (least cache warmth to
			// lose is not modeled; youngest-first mirrors the reconciler).
			var victim *trafficReplica
			for _, name := range names {
				rep := ts.replicas[name]
				if rep == nil || rep.draining || rep.ns == nil {
					continue
				}
				if victim == nil || rep.idx > victim.idx {
					victim = rep
				}
			}
			if victim != nil {
				victim.draining = true
				ts.bal.SetDraining(victim.name, true)
				tc.tracer.replicaScaleDown(victim.name, r, victim.node, perReplica)
			}
		}
		if tc.store != nil {
			tc.store.Series("autoscaler/"+ts.spec.Name+"/replicas").Append(now, float64(routable+ts.pending))
		}
	}

	tc.roundArrivals = append(tc.roundArrivals, tc.curFirst)
	tc.roundRetries = append(tc.roundRetries, tc.curRetries)
	tc.roundCompletions = append(tc.roundCompletions, fleetDone)

	// The requests SLO pages when the fleet-wide client-visible failure
	// fraction (shed + expired + dropped + lost over arrivals' outcomes)
	// burns its budget across both windows — the wiring that lets
	// breaker/shed state reach the alerting plane and, via Paging, the
	// reconciler and autoscalers next round.
	var alerts []obs.Alert
	if tc.resilient {
		alerts = burn.Observe("requests", r, now, reqGood, reqBad)
	}

	// Whole-node busy-cycle deltas -> fleet utilization for the round,
	// attributed to the spike or trough bucket inside the measured window.
	var deltaSum float64
	for i, n := range nodes {
		if tc.nodeRef[i] != n {
			tc.nodeRef[i] = n
			tc.prevBusy[i] = 0
			tc.freqGHz = n.m.Config().FreqGHz
			tc.cpusPer = n.m.Topology().LogicalCPUs()
		}
		if down[i] {
			continue
		}
		busy := n.totalBusy()
		d := busy - tc.prevBusy[i]
		tc.prevBusy[i] = busy
		if d > 0 {
			deltaSum += d
		}
	}
	util := 0.0
	if tc.freqGHz > 0 {
		util = deltaSum / (tc.freqGHz * float64(tc.hbNs) * float64(tc.cpusPer*len(nodes)))
	}
	if r >= tc.warmup {
		if tc.roundSpike {
			tc.spikeUtilSum += util
			tc.spikeRounds++
		} else {
			tc.troughUtilSum += util
			tc.troughRounds++
		}
	}
	if tc.store != nil {
		tc.store.Series("traffic/fleet_util").Append(now, util)
	}
	return pods, alerts
}

// breakerLevel maps a breaker state onto a plottable series value.
func breakerLevel(s traffic.BreakerState) float64 {
	switch s {
	case traffic.BreakerOpen:
		return 1
	case traffic.BreakerHalfOpen:
		return 0.5
	}
	return 0
}

// TrafficServiceResult is one replicated service's measured outcome.
type TrafficServiceResult struct {
	Name    string
	Store   string
	Program string
	// Replicas is the final routable replica count; PeakReplicas the
	// highest count (placed + pending) any round reached.
	Replicas     int
	PeakReplicas int
	ScaleUps     int
	ScaleDowns   int
	// Request accounting over the whole run (warmup included). The
	// conservation identity Arrivals = Completions + Drops + Shed +
	// Expired + Lost + InFlight holds by construction; Conserved in
	// TrafficResult checks it.
	Arrivals    int64
	Completions int64
	Drops       int64
	Shed        int64
	Expired     int64
	Lost        int64
	InFlight    int64
	// Drop-reason split (sums to Drops): no routable replica at all, all
	// routable replicas at the queue cap, breaker fast-fails.
	DropsUnroutable int64
	DropsCapacity   int64
	DropsBreaker    int64
	// Resilience-layer counters. Retries is deliberately outside the
	// conservation identity: each retry re-enters Arrivals.
	Resilient    bool
	Retries      int64
	BudgetDenied int64
	Exhausted    int64
	BreakerTrips int
	BreakerState string
	// Latency over the measured window, merged across live replicas.
	Queries       int64
	Summary       stats.Summary
	SLOViolations float64
	// Spike/trough SLO-violation split (measured window, rounds
	// classified by the arrival process's spike schedule).
	SpikeQueries     int64
	SpikeSLO         float64
	TroughQueries    int64
	TroughSLO        float64
	FailedPlacements int
}

// TrafficResult aggregates the traffic plane's outcome.
type TrafficResult struct {
	Services                                                    []TrafficServiceResult
	Arrivals, Completions, Drops, Shed, Expired, Lost, InFlight int64
	// Conserved asserts the request-accounting identity fleet-wide.
	Conserved            bool
	Retries              int64
	ScaleUps, ScaleDowns int
	// SpikeUtil/TroughUtil are mean whole-fleet busy fractions over the
	// measured window's spike vs trough rounds.
	SpikeUtil, TroughUtil     float64
	SpikeRounds, TroughRounds int
	// Per-round fleet trajectories (indexed by round, warmup included):
	// first-attempt arrivals, released retries, observed completions.
	// Verdicts that need recovery bounds read these; rendering does not.
	RoundArrivals    []int64
	RoundRetries     []int64
	RoundCompletions []int64
}

// Amplification is the request-amplification factor: total arrivals over
// first-attempt arrivals. 1.0 means no retries.
func (tr *TrafficResult) Amplification() float64 {
	first := tr.Arrivals - tr.Retries
	if first <= 0 {
		return 1
	}
	return float64(tr.Arrivals) / float64(first)
}

// collect finalizes the traffic plane into the run result.
func (tc *trafficController) collect(res *Result, nodes []*Node, down []bool) {
	if tc == nil {
		return
	}
	tr := &TrafficResult{
		RoundArrivals:    tc.roundArrivals,
		RoundRetries:     tc.roundRetries,
		RoundCompletions: tc.roundCompletions,
	}
	for _, ts := range tc.services {
		sr := TrafficServiceResult{
			Name:             ts.spec.Name,
			Store:            ts.spec.Store,
			Program:          ts.spec.Program,
			Replicas:         ts.bal.Routable(),
			PeakReplicas:     ts.peakReplicas,
			ScaleUps:         ts.sc.Ups(),
			ScaleDowns:       ts.sc.Downs(),
			Arrivals:         ts.bal.Arrivals(),
			Drops:            ts.bal.Drops(),
			DropsUnroutable:  ts.bal.DropsUnroutable(),
			DropsCapacity:    ts.bal.DropsCapacity(),
			DropsBreaker:     ts.bal.DropsBreaker(),
			Lost:             ts.lost,
			Completions:      ts.retiredCompleted,
			Shed:             ts.retiredShed,
			Expired:          ts.retiredExpired,
			Resilient:        ts.resilient,
			Retries:          ts.retries,
			BudgetDenied:     ts.budget.Denied(),
			Exhausted:        ts.exhausted,
			BreakerTrips:     ts.breaker.Trips(),
			BreakerState:     ts.breaker.State().String(),
			FailedPlacements: ts.failedPlacements,
		}
		lat := stats.NewHistogram(1e3, 1e10, 60)
		names := make([]string, 0, len(ts.replicas))
		for name := range ts.replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rep := ts.replicas[name]
			live := rep.n == nodes[rep.node] && !down[rep.node]
			if live {
				rep.refreshSeen(nil)
				_ = lat.Merge(rep.ns.svc.Latencies())
			}
			sr.Completions += rep.completedSeen
			sr.Shed += rep.shedSeen
			sr.Expired += rep.expiredSeen
			sr.InFlight += rep.outstanding()
		}
		sr.Queries = lat.Count()
		sr.Summary = lat.Summarize()
		sr.SLOViolations = lat.FractionAbove(tc.sloNs)
		sr.SpikeQueries = ts.spikeGood + ts.spikeBad
		if sr.SpikeQueries > 0 {
			sr.SpikeSLO = float64(ts.spikeBad) / float64(sr.SpikeQueries)
		}
		sr.TroughQueries = ts.troughGood + ts.troughBad
		if sr.TroughQueries > 0 {
			sr.TroughSLO = float64(ts.troughBad) / float64(sr.TroughQueries)
		}
		tr.Services = append(tr.Services, sr)
		tr.Arrivals += sr.Arrivals
		tr.Completions += sr.Completions
		tr.Drops += sr.Drops
		tr.Shed += sr.Shed
		tr.Expired += sr.Expired
		tr.Lost += sr.Lost
		tr.InFlight += sr.InFlight
		tr.Retries += sr.Retries
		tr.ScaleUps += sr.ScaleUps
		tr.ScaleDowns += sr.ScaleDowns
	}
	tr.Conserved = tr.Arrivals == tr.Completions+tr.Drops+tr.Shed+tr.Expired+tr.Lost+tr.InFlight
	if tc.spikeRounds > 0 {
		tr.SpikeUtil = tc.spikeUtilSum / float64(tc.spikeRounds)
	}
	if tc.troughRounds > 0 {
		tr.TroughUtil = tc.troughUtilSum / float64(tc.troughRounds)
	}
	tr.SpikeRounds = tc.spikeRounds
	tr.TroughRounds = tc.troughRounds
	res.Traffic = tr
}

// renderTraffic appends the traffic plane's section to a rendered run.
func (tr *TrafficResult) render(b *strings.Builder) {
	tb := trace.NewTable("traffic plane: replicated services under open-loop load",
		"service", "program", "replicas", "arrivals", "done", "drop", "lost", "p99 us", "SLO viol", "spike SLO", "trough SLO")
	for _, s := range tr.Services {
		p99 := "n/a"
		slo := "n/a"
		if s.Summary.Valid {
			p99 = fmt.Sprintf("%.1f", s.Summary.P99/1e3)
			slo = fmt.Sprintf("%.2f%%", 100*s.SLOViolations)
		}
		tb.AddRow(s.Name, s.Program,
			fmt.Sprintf("%d (peak %d)", s.Replicas, s.PeakReplicas),
			s.Arrivals, s.Completions, s.Drops, s.Lost, p99, slo,
			fmt.Sprintf("%.2f%%", 100*s.SpikeSLO),
			fmt.Sprintf("%.2f%%", 100*s.TroughSLO))
	}
	b.WriteString("\n")
	b.WriteString(tb.String())
	resilient := false
	for _, s := range tr.Services {
		if s.Resilient {
			resilient = true
		}
	}
	if resilient {
		rb := trace.NewTable("request-path resilience: deadlines, retries, breakers, shedding",
			"service", "retries", "shed", "expired", "drop cap/unrt/brk", "budget denied", "exhausted", "breaker")
		for _, s := range tr.Services {
			if !s.Resilient {
				continue
			}
			rb.AddRow(s.Name, s.Retries, s.Shed, s.Expired,
				fmt.Sprintf("%d/%d/%d", s.DropsCapacity, s.DropsUnroutable, s.DropsBreaker),
				s.BudgetDenied, s.Exhausted,
				fmt.Sprintf("%s (%d trips)", s.BreakerState, s.BreakerTrips))
		}
		b.WriteString("\n")
		b.WriteString(rb.String())
	}
	conserved := "conserved"
	if !tr.Conserved {
		conserved = "NOT CONSERVED"
	}
	fmt.Fprintf(b, "\nrequest accounting: %d arrivals = %d completed + %d dropped + %d shed + %d expired + %d lost + %d in flight (%s)\n",
		tr.Arrivals, tr.Completions, tr.Drops, tr.Shed, tr.Expired, tr.Lost, tr.InFlight, conserved)
	if tr.Retries > 0 || resilient {
		fmt.Fprintf(b, "retry amplification: %.2fx (%d first attempts + %d retries)\n",
			tr.Amplification(), tr.Arrivals-tr.Retries, tr.Retries)
	}
	fmt.Fprintf(b, "autoscaler: %d scale-ups, %d scale-downs; fleet utilization %.1f%% in spikes (%d rounds) vs %.1f%% in troughs (%d rounds)\n",
		tr.ScaleUps, tr.ScaleDowns,
		100*tr.SpikeUtil, tr.SpikeRounds, 100*tr.TroughUtil, tr.TroughRounds)
}
