package cluster

import (
	"bytes"
	"strings"
	"testing"

	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/telemetry"
)

// evictionSpec forces the reconciler to evict, so a full
// admit → place → run → quarantine → evict → requeue → reschedule
// lifecycle chain exists in the trace.
func evictionSpec() Spec {
	spec := testSpec()
	spec.EvictVPI = 0.001 // any activity at all reads as hot
	spec.HotRounds = 1
	spec.MaxEvictions = 1
	spec.DurationSeconds = 1.2
	return spec
}

// TestGoldenEvictionSpanChain is the golden span-tree test: it walks the
// parent links backwards from a reschedule span and pins the exact causal
// chain the tracer promises for an evicted pod.
func TestGoldenEvictionSpanChain(t *testing.T) {
	spec := evictionSpec()
	plane := obs.NewPlane(spec.Nodes, 0)
	res, err := Run(spec, RunOptions{Workers: 4, Obs: plane})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("scenario never evicted — no chain to check")
	}
	spans := plane.MergedSpans()
	byID := make(map[uint64]telemetry.Span, len(spans))
	var resched *telemetry.Span
	for i := range spans {
		byID[spans[i].ID] = spans[i]
		if resched == nil && spans[i].Kind == telemetry.SpanPodReschedule {
			resched = &spans[i]
		}
	}
	if resched == nil {
		t.Fatalf("no reschedule span among %d merged spans", len(spans))
	}

	// Walk the ancestry of the reschedule back to its admission.
	chain := []string{resched.Kind.String()}
	for id := resched.Parent; id != 0; {
		s, ok := byID[id]
		if !ok {
			t.Fatalf("parent %d of chain missing from merged spans", id)
		}
		if s.Name != resched.Name {
			t.Fatalf("chain crossed pods: %q has ancestor %q", resched.Name, s.Name)
		}
		chain = append([]string{s.Kind.String()}, chain...)
		id = s.Parent
	}
	const golden = "PodAdmit > PodPlace > PodQuarantine > PodEvict > PodRequeue > PodReschedule"
	if got := strings.Join(chain, " > "); got != golden {
		t.Fatalf("causal chain for %s:\n got %s\nwant %s", resched.Name, got, golden)
	}

	// The reschedule restarts the pod: a run interval hangs off it, and the
	// pre-eviction run interval was closed at the eviction round.
	var rerun bool
	for _, s := range spans {
		if s.Kind == telemetry.SpanPodRun && s.Parent == resched.ID {
			rerun = true
		}
	}
	if !rerun {
		t.Fatal("no run interval parented on the reschedule span")
	}

	// The rendered tree nests the whole chain under the admission.
	tree := telemetry.RenderSpanTree(spans)
	for _, want := range []string{
		"PodAdmit " + resched.Name,
		"PodQuarantine " + resched.Name,
		"PodEvict " + resched.Name,
		"PodReschedule " + resched.Name,
	} {
		if !strings.Contains(tree, want) {
			t.Fatalf("span tree missing %q:\n%s", want, tree)
		}
	}
}

// TestObsChromeTraceValid exports the merged timeline as Chrome trace JSON
// and checks it against the schema validator, including the full eviction
// chain and the per-node daemon decision spans.
func TestObsChromeTraceValid(t *testing.T) {
	spec := evictionSpec()
	plane := obs.NewPlane(spec.Nodes, 0)
	if _, err := Run(spec, RunOptions{Workers: 4, Obs: plane}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, plane.MergedSpans()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema check: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"PodEvict", "PodReschedule", "VPIEstimate", "CgroupWrite"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %s events", want)
		}
	}
}

// TestObsDeterministicAcrossWorkers pins the tentpole determinism
// contract: with tracing enabled, the report, the merged span timeline,
// the Chrome trace bytes and the fleet series are all byte-identical no
// matter how many workers advanced the nodes.
func TestObsDeterministicAcrossWorkers(t *testing.T) {
	spec := evictionSpec()
	runArm := func(workers int) (*Result, *obs.Plane) {
		plane := obs.NewPlane(spec.Nodes, 0)
		res, err := Run(spec, RunOptions{Workers: workers, Obs: plane})
		if err != nil {
			t.Fatal(err)
		}
		return res, plane
	}
	r1, p1 := runArm(1)
	r8, p8 := runArm(8)

	if r1.Render() != r8.Render() {
		t.Fatalf("report differs between Workers 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			r1.Render(), r8.Render())
	}
	t1 := telemetry.RenderSpanTree(p1.MergedSpans())
	t8 := telemetry.RenderSpanTree(p8.MergedSpans())
	if t1 != t8 {
		t.Fatalf("span tree differs between Workers 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", t1, t8)
	}
	var b1, b8 bytes.Buffer
	if err := telemetry.WriteChromeTrace(&b1, p1.MergedSpans()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteChromeTrace(&b8, p8.MergedSpans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatal("chrome trace bytes differ between Workers 1 and 8")
	}
	if s1, s8 := p1.Store.Render(), p8.Store.Render(); s1 != s8 {
		t.Fatalf("fleet series differ between Workers 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", s1, s8)
	}
}

// TestObsTracingDoesNotPerturbRun pins the other half of the contract:
// attaching the observability plane is pure observation — the simulation's
// report is byte-identical with tracing on or off.
func TestObsTracingDoesNotPerturbRun(t *testing.T) {
	spec := evictionSpec()
	plain, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	plane := obs.NewPlane(spec.Nodes, 0)
	traced, err := Run(spec, RunOptions{Workers: 4, Obs: plane})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != traced.Render() {
		t.Fatalf("tracing perturbed the run:\n--- off ---\n%s\n--- on ---\n%s",
			plain.Render(), traced.Render())
	}
	if plane.Control().Total() == 0 {
		t.Fatal("traced run recorded no control-plane spans")
	}
	if plane.NodeRecorder(0).Total() == 0 {
		t.Fatal("traced run recorded no daemon spans on node 0")
	}
}

// TestFleetRollupSeries checks the per-round fleet aggregates land in the
// plane's store with sane values.
func TestFleetRollupSeries(t *testing.T) {
	spec := testSpec()
	plane := obs.NewPlane(spec.Nodes, 0)
	if _, err := Run(spec, RunOptions{Workers: 4, Obs: plane}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fleet/mean_vpi", "fleet/lc_util", "fleet/nodes_up",
		"fleet/lendable_siblings", "fleet/service_p99_us"} {
		s := plane.Store.Series(name)
		if s.Len() == 0 {
			t.Errorf("series %s is empty", name)
		}
	}
	up := plane.Store.Series("fleet/nodes_up")
	if last, ok := up.Last(); !ok || last != float64(spec.Nodes) {
		t.Errorf("fault-free fleet/nodes_up last = %v, want %d", last, spec.Nodes)
	}
}
