package lcservice

import (
	"testing"

	"github.com/holmes-colocation/holmes/internal/cpuid"
	"github.com/holmes-colocation/holmes/internal/kernel"
	"github.com/holmes-colocation/holmes/internal/kvstore/memcached"
	"github.com/holmes-colocation/holmes/internal/kvstore/redis"
	"github.com/holmes-colocation/holmes/internal/kvstore/rocksdb"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

func newEnv() (*machine.Machine, *kernel.Kernel) {
	cfg := machine.DefaultConfig()
	cfg.Topology = cpuid.Topology{Sockets: 1, Cores: 8}
	m := machine.New(cfg)
	return m, kernel.New(m)
}

func smallGen(w ycsb.Workload, records int64) *ycsb.Generator {
	cfg := ycsb.DefaultConfig(w)
	cfg.RecordCount = records
	cfg.FieldCount = 2
	cfg.FieldLength = 100
	return ycsb.NewGenerator(cfg)
}

func TestDefaultConfigFor(t *testing.T) {
	if DefaultConfigFor("redis").Workers != 1 {
		t.Fatal("redis must be single-threaded")
	}
	if DefaultConfigFor("memcached").Workers != 4 {
		t.Fatal("memcached workers")
	}
	if DefaultConfigFor("rocksdb").BackgroundWorkers == 0 {
		t.Fatal("rocksdb needs background workers")
	}
}

func TestServiceServesQueries(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, redis.New(redis.DefaultConfig()), DefaultConfigFor("redis"))
	gen := smallGen(ycsb.WorkloadA, 1000)
	svc.Load(gen)
	if svc.Store().Len() != 1000 {
		t.Fatalf("loaded %d", svc.Store().Len())
	}
	// Pin the worker and submit queries.
	for _, w := range svc.Workers() {
		_ = k.SetAffinity(w.TID, cpuid.MaskOf(0))
	}
	for i := 0; i < 100; i++ {
		svc.Submit(gen.Next(), m.Now())
		m.RunFor(100_000)
	}
	if svc.Completed() != 100 {
		t.Fatalf("completed %d of 100", svc.Completed())
	}
	sum := svc.Latencies().Summarize()
	if sum.Count != 100 || sum.Mean <= 0 {
		t.Fatalf("latency summary: %+v", sum)
	}
	// Uncontended in-memory reads are tens of microseconds at most.
	if sum.P99 > 2_000_000 {
		t.Fatalf("p99 = %v ns, implausibly slow", sum.P99)
	}
}

func TestLatencyIncludesQueueing(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, redis.New(redis.DefaultConfig()), Config{Workers: 1})
	gen := smallGen(ycsb.WorkloadA, 1000)
	svc.Load(gen)
	_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))

	// Submit a large batch at once: later requests must queue.
	for i := 0; i < 200; i++ {
		svc.Submit(gen.Next(), m.Now())
	}
	m.RunFor(100_000_000)
	if svc.Completed() != 200 {
		t.Fatalf("completed %d", svc.Completed())
	}
	sum := svc.Latencies().Summarize()
	if sum.Max < sum.Min*3 {
		t.Fatalf("no queueing spread: min=%v max=%v", sum.Min, sum.Max)
	}
}

func TestMemcachedScansDropped(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, memcached.New(memcached.DefaultConfig()), Config{Workers: 1})
	gen := smallGen(ycsb.WorkloadE, 500)
	svc.Load(gen)
	_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))
	for i := 0; i < 50; i++ {
		svc.Submit(ycsb.Op{Type: ycsb.OpScan, Key: ycsb.Key(1), ScanLen: 10}, m.Now())
	}
	m.RunFor(10_000_000)
	if svc.Unsupported() != 50 {
		t.Fatalf("unsupported = %d", svc.Unsupported())
	}
	if svc.Completed() != 0 {
		t.Fatal("unsupported scans should not complete")
	}
}

func TestBackgroundWorkRouted(t *testing.T) {
	m, k := newEnv()
	cfg := rocksdb.DefaultConfig()
	cfg.MemtableBytes = 32 << 10
	svc := Launch(k, rocksdb.New(cfg), Config{Workers: 2, BackgroundWorkers: 2})
	gen := smallGen(ycsb.WorkloadA, 100)
	svc.Load(gen)
	for _, w := range svc.Workers() {
		_ = k.SetAffinity(w.TID, cpuid.MaskOf(0, 1))
	}
	for _, b := range svc.BackgroundThreads() {
		_ = k.SetAffinity(b.TID, cpuid.MaskOf(2))
	}
	// Write-heavy load triggers flushes whose work lands on bg threads.
	for i := 0; i < 500; i++ {
		svc.Submit(ycsb.Op{Type: ycsb.OpInsert, Key: ycsb.Key(int64(1000 + i)), Value: make([]byte, 1000)}, m.Now())
		m.RunFor(50_000)
	}
	m.RunFor(500_000_000)
	var bgCycles float64
	for _, b := range svc.BackgroundThreads() {
		bgCycles += b.HW.ConsumedCycles
	}
	if bgCycles == 0 {
		t.Fatal("background threads did no work despite flushes")
	}
}

func TestClientBurstyTraffic(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, redis.New(redis.DefaultConfig()), Config{Workers: 1})
	gen := smallGen(ycsb.WorkloadB, 1000)
	svc.Load(gen)
	_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))

	// Short bursts: 5-8 ms serving, 2-3 ms gaps, 50k RPS.
	tr := ycsb.NewTraffic(5e6, 8e6, 2e6, 3e6, 50_000, 11)
	c := NewClient(svc, gen, tr)
	c.Start()
	m.RunFor(50_000_000) // 50 ms: several burst/gap cycles
	if c.Bursts() < 3 {
		t.Fatalf("only %d bursts in 50 ms", c.Bursts())
	}
	if svc.Completed() < 500 {
		t.Fatalf("completed %d queries", svc.Completed())
	}
	c.Stop()
	done := svc.Completed()
	m.RunFor(50_000_000)
	// A few in-flight completions may drain, but no new arrivals.
	if svc.Completed() > done+50 {
		t.Fatalf("client kept injecting after Stop: %d -> %d", done, svc.Completed())
	}
}

func TestClientConstantTraffic(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, redis.New(redis.DefaultConfig()), Config{Workers: 1})
	gen := smallGen(ycsb.WorkloadB, 1000)
	svc.Load(gen)
	_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))
	tr := ycsb.NewTraffic(1e9, 2e9, 1, 2, 20_000, 3)
	c := NewClient(svc, gen, tr)
	c.StartServing()
	if !c.Serving() {
		t.Fatal("not serving after StartServing")
	}
	m.RunFor(20_000_000)
	if svc.Completed() < 200 {
		t.Fatalf("constant traffic completed only %d", svc.Completed())
	}
}

func TestResetLatencies(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, redis.New(redis.DefaultConfig()), Config{Workers: 1})
	gen := smallGen(ycsb.WorkloadA, 100)
	svc.Load(gen)
	_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))
	svc.Submit(gen.Next(), m.Now())
	m.RunFor(10_000_000)
	svc.ResetLatencies()
	if svc.Latencies().Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWorkloadsCDFServed(t *testing.T) {
	// Workloads C (read-only), D (latest-skewed with inserts) and F
	// (read-modify-write) exercise the remaining op types end to end.
	for _, name := range []string{"c", "d", "f"} {
		wl, err := ycsb.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, k := newEnv()
		svc := Launch(k, redis.New(redis.DefaultConfig()), Config{Workers: 1})
		gen := smallGen(wl, 500)
		svc.Load(gen)
		_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))
		for i := 0; i < 200; i++ {
			svc.Submit(gen.Next(), m.Now())
			m.RunFor(50_000)
		}
		m.RunFor(50_000_000)
		if svc.Completed() != 200 {
			t.Fatalf("workload-%s completed %d of 200", name, svc.Completed())
		}
		if svc.Unsupported() != 0 {
			t.Fatalf("workload-%s hit unsupported ops", name)
		}
	}
}

func TestRMWCostsMoreThanRead(t *testing.T) {
	m, k := newEnv()
	svc := Launch(k, redis.New(redis.DefaultConfig()), Config{Workers: 1})
	gen := smallGen(ycsb.WorkloadA, 500)
	svc.Load(gen)
	_ = k.SetAffinity(svc.Workers()[0].TID, cpuid.MaskOf(0))

	key := ycsb.Key(1)
	val := make([]byte, 1000)
	svc.Submit(ycsb.Op{Type: ycsb.OpRead, Key: key}, m.Now())
	m.RunFor(10_000_000)
	readLat := svc.Latencies().Mean()
	svc.ResetLatencies()
	svc.Submit(ycsb.Op{Type: ycsb.OpReadModifyWrite, Key: key, Value: val}, m.Now())
	m.RunFor(10_000_000)
	rmwLat := svc.Latencies().Mean()
	if rmwLat <= readLat {
		t.Fatalf("RMW (%.0f ns) should cost more than read (%.0f ns)", rmwLat, readLat)
	}
}
