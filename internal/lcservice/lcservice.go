// Package lcservice runs a key-value store as a latency-critical service
// on the simulated machine: a kernel process with worker threads serving
// queries and (for the disk-based stores) background maintenance threads,
// plus an open-loop YCSB client that injects requests as simulation events
// and records per-query latency.
//
// This is the glue between the functional stores and the machine: an
// operation executes against the real data structure immediately, but the
// *cost* it reports becomes work items on a serving hardware thread, so
// the recorded latency includes queueing, CPU contention, and SMT
// interference.
package lcservice

import (
	"fmt"

	"github.com/holmes-colocation/holmes/internal/kernel"
	"github.com/holmes-colocation/holmes/internal/kvstore"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/stats"
	"github.com/holmes-colocation/holmes/internal/workload"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

// Config parameterizes a service instance.
type Config struct {
	// Workers is the number of query-serving threads. Redis uses 1
	// (single-threaded event loop); the others use 4 in the evaluation.
	Workers int
	// BackgroundWorkers run flush/compaction/checkpoint work for stores
	// implementing kvstore.Backgrounder.
	BackgroundWorkers int
	// PerRequestOverhead is charged on every query in addition to the
	// store's own cost: the network receive, system-call, protocol-parse
	// and reply-send path that dominates small-op latency on a real
	// server (tens of microseconds per query in the paper's CDFs).
	PerRequestOverhead workload.Cost
}

// DefaultOverhead returns the per-request network/syscall cost: ~40 µs of
// execution (interrupt, TCP receive, epoll wakeup, protocol parse, reply
// send) plus socket-buffer and connection-state traffic. The 18 DRAM
// lines make even cache-resident queries carry interference-sensitive
// work, and they put the serving CPU's quiet VPI near ~36 — below the
// paper's threshold E=40 — while sibling interference pushes it above.
func DefaultOverhead() workload.Cost {
	c := workload.Compute(80_000)
	c.Add(workload.MemRead(workload.L2, 40))
	c.Add(workload.MemWrite(workload.L2, 40))
	c.Add(workload.MemRead(workload.DRAM, 18))
	return c
}

// DefaultConfigFor returns the per-store evaluation configuration.
func DefaultConfigFor(storeName string) Config {
	switch storeName {
	case "redis":
		// One event-loop worker plus the forked BGSAVE child.
		return Config{Workers: 1, BackgroundWorkers: 1, PerRequestOverhead: DefaultOverhead()}
	case "memcached":
		return Config{Workers: 4, PerRequestOverhead: DefaultOverhead()}
	default: // rocksdb, wiredtiger
		return Config{Workers: 4, BackgroundWorkers: 2, PerRequestOverhead: DefaultOverhead()}
	}
}

// Service is a running latency-critical service.
type Service struct {
	store kvstore.Store
	k     *kernel.Kernel
	m     *machine.Machine
	proc  *kernel.Process

	workers  []*kernel.Thread
	bg       []*kernel.Thread
	nextW    int
	nextBG   int
	overhead workload.Cost

	lat         *stats.Histogram
	completed   int64
	submitted   int64
	unsupported int64

	// Replica-side admission control (SetAdmission): a concurrency limit
	// sheds requests at submission when the unresolved count is at the
	// cap, and a per-request deadline classifies replies that drain after
	// it as expired — the client already timed out, so the work was
	// wasted. Both default to off (0), leaving closed-loop services
	// untouched.
	concLimit  int64
	deadlineNs int64
	shed       int64
	expired    int64
}

// Outcome classifies how one submitted request resolved.
type Outcome uint8

const (
	// OutcomeCompleted: the reply drained within the deadline (or no
	// deadline was configured).
	OutcomeCompleted Outcome = iota
	// OutcomeExpired: the reply drained after the per-request deadline —
	// the queueing delay ate the budget, the client saw a timeout, and
	// the server's work was wasted.
	OutcomeExpired
	// OutcomeShed: admission control refused the request at submission
	// (unresolved count at the concurrency limit); no work was done.
	OutcomeShed
)

// Launch creates the service process with its threads. The caller pins
// threads afterwards (or lets the scheduler under test place them).
func Launch(k *kernel.Kernel, store kvstore.Store, cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Service{
		store:    store,
		k:        k,
		m:        k.Machine(),
		overhead: cfg.PerRequestOverhead,
		// Latencies recorded in nanoseconds: 1 µs .. 10 s.
		lat: stats.NewHistogram(1e3, 1e10, 60),
	}
	s.proc = k.Spawn(store.Name(), 0)
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, s.proc.AddThread(fmt.Sprintf("%s-worker/%d", store.Name(), i)))
	}
	for i := 0; i < cfg.BackgroundWorkers; i++ {
		s.bg = append(s.bg, s.proc.AddThread(fmt.Sprintf("%s-bg/%d", store.Name(), i)))
	}
	return s
}

// PID returns the service's process ID (what the administrator registers
// with Holmes).
func (s *Service) PID() int { return s.proc.PID }

// Process returns the underlying kernel process.
func (s *Service) Process() *kernel.Process { return s.proc }

// Store returns the underlying store.
func (s *Service) Store() kvstore.Store { return s.store }

// Workers returns the query-serving threads.
func (s *Service) Workers() []*kernel.Thread { return s.workers }

// BackgroundThreads returns the maintenance threads.
func (s *Service) BackgroundThreads() []*kernel.Thread { return s.bg }

// Latencies returns the recorded query latency histogram (nanoseconds).
func (s *Service) Latencies() *stats.Histogram { return s.lat }

// ResetLatencies clears recorded latencies (e.g. after warmup).
func (s *Service) ResetLatencies() { s.lat.Reset() }

// Completed returns the number of queries completed within their
// deadline (all completions when no deadline is configured).
func (s *Service) Completed() int64 { return s.completed }

// Submitted returns the number of submitted queries.
func (s *Service) Submitted() int64 { return s.submitted }

// Shed returns the requests refused by admission control.
func (s *Service) Shed() int64 { return s.shed }

// Expired returns the replies that drained after their deadline.
func (s *Service) Expired() int64 { return s.expired }

// SetAdmission configures replica-side admission control: a concurrency
// limit (0 = unlimited) shedding submissions once the unresolved count
// reaches it, and a per-request deadline in nanoseconds (0 = none) past
// which a draining reply counts as expired instead of completed.
// Expired replies still record their latency — the SLI must see the
// slowness that killed them.
func (s *Service) SetAdmission(limit, deadlineNs int64) {
	s.concLimit = limit
	s.deadlineNs = deadlineNs
}

// Load performs the YCSB load phase directly (no latency recording): the
// data is in place before the measured run, as with a real preloaded
// store.
func (s *Service) Load(gen *ycsb.Generator) {
	gen.LoadOps(func(key string, value []byte) {
		s.store.Insert(key, value)
	})
	if b, ok := s.store.(kvstore.Backgrounder); ok {
		b.DrainBackground() // discard load-phase maintenance
	}
}

// Submit executes op against the store and enqueues its cost on a worker
// thread. The recorded latency spans from now to the completion of the
// final work item, so it includes queueing behind earlier requests.
func (s *Service) Submit(op ycsb.Op, nowNs int64) {
	s.SubmitCB(op, nowNs, nil)
}

// SubmitCB is Submit with an outcome callback and the configured
// admission policy applied: a shed outcome fires synchronously inside
// the call; completed/expired fire when the reply drains, from the
// serving node's simulation. The callback must only touch state owned
// by that node's side of the control-plane handoff.
func (s *Service) SubmitCB(op ycsb.Op, nowNs int64, done func(oc Outcome, latNs int64)) {
	s.submitted++
	if s.concLimit > 0 && s.submitted-s.completed-s.expired-s.shed > s.concLimit {
		s.shed++
		if done != nil {
			done(OutcomeShed, 0)
		}
		return
	}
	var res kvstore.Result
	switch op.Type {
	case ycsb.OpRead:
		res = s.store.Read(op.Key)
	case ycsb.OpUpdate:
		res = s.store.Update(op.Key, op.Value)
	case ycsb.OpInsert:
		res = s.store.Insert(op.Key, op.Value)
	case ycsb.OpScan:
		res = s.store.Scan(op.Key, op.ScanLen)
		if !res.Found {
			// Store without scan support (Memcached): count and drop.
			// For callers tracking resolution it resolves as shed — no
			// work was done and no reply will drain.
			s.unsupported++
			s.shed++
			if done != nil {
				done(OutcomeShed, 0)
			}
			return
		}
	case ycsb.OpReadModifyWrite:
		r1 := s.store.Read(op.Key)
		r2 := s.store.Update(op.Key, op.Value)
		r1.Cost.Add(r2.Cost)
		r1.SSDReads += r2.SSDReads
		res = r1
	}

	res.Cost.Add(s.overhead)
	items := res.Items(func(doneNs int64) {
		latNs := doneNs - nowNs
		s.lat.Add(float64(latNs))
		if s.deadlineNs > 0 && latNs > s.deadlineNs {
			s.expired++
			if done != nil {
				done(OutcomeExpired, latNs)
			}
			return
		}
		s.completed++
		if done != nil {
			done(OutcomeCompleted, latNs)
		}
	})
	s.dispatch(items)
	s.drainBackground()
}

// dispatch places a request's items on a worker thread round-robin.
func (s *Service) dispatch(items []workload.Item) {
	w := s.workers[s.nextW%len(s.workers)]
	s.nextW++
	w.HW.Push(items...)
}

// drainBackground forwards pending maintenance to background threads.
func (s *Service) drainBackground() {
	b, ok := s.store.(kvstore.Backgrounder)
	if !ok || len(s.bg) == 0 {
		return
	}
	for _, task := range b.DrainBackground() {
		t := s.bg[s.nextBG%len(s.bg)]
		s.nextBG++
		t.HW.Push(task.Items()...)
	}
}

// Unsupported returns the count of dropped unsupported operations.
func (s *Service) Unsupported() int64 { return s.unsupported }

// Client drives a service with the bursty YCSB traffic of §6.1 as
// simulation events.
type Client struct {
	svc     *Service
	gen     *ycsb.Generator
	traffic *ycsb.Traffic
	m       *machine.Machine

	serving bool
	stopped bool
	bursts  int
}

// NewClient builds a client; call Start to begin traffic.
func NewClient(svc *Service, gen *ycsb.Generator, traffic *ycsb.Traffic) *Client {
	return &Client{svc: svc, gen: gen, traffic: traffic, m: svc.m}
}

// Serving reports whether a burst is in progress.
func (c *Client) Serving() bool { return c.serving }

// Bursts returns the number of bursts started.
func (c *Client) Bursts() int { return c.bursts }

// Start begins the burst/gap cycle at the current simulation time.
func (c *Client) Start() { c.startBurst(c.m.Now()) }

// StartServing begins constant (non-bursty) traffic: one endless burst.
func (c *Client) StartServing() {
	c.serving = true
	c.bursts++
	c.scheduleArrival(c.m.Now(), 1<<62)
}

// Stop ends traffic generation.
func (c *Client) Stop() { c.stopped = true; c.serving = false }

func (c *Client) startBurst(nowNs int64) {
	if c.stopped {
		return
	}
	c.serving = true
	c.bursts++
	end := nowNs + c.traffic.NextBurst()
	c.scheduleArrival(nowNs, end)
	c.m.Schedule(end, func(t int64) {
		c.serving = false
		if c.stopped {
			return
		}
		c.m.Schedule(t+c.traffic.NextGap(), c.startBurst)
	})
}

func (c *Client) scheduleArrival(nowNs, burstEnd int64) {
	next := nowNs + c.traffic.NextInterArrival()
	if next >= burstEnd || c.stopped {
		return
	}
	c.m.Schedule(next, func(t int64) {
		if c.stopped {
			return
		}
		c.svc.Submit(c.gen.Next(), t)
		c.scheduleArrival(t, burstEnd)
	})
}
