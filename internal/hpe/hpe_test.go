package hpe

import (
	"strings"
	"testing"
)

func TestEventNumbers(t *testing.T) {
	// The event numbers must match the paper's Table 1.
	if CyclesL3Miss != 0x02A3 || StallsL3Miss != 0x06A3 ||
		CyclesMemAny != 0x10A3 || StallsMemAny != 0x14A3 {
		t.Fatal("candidate HPE event numbers diverge from Table 1")
	}
}

func TestEventNames(t *testing.T) {
	if StallsMemAny.Name() != "STALLS_MEM_ANY" {
		t.Fatalf("Name = %q", StallsMemAny.Name())
	}
	if !strings.Contains(StallsMemAny.String(), "0x14a3") {
		t.Fatalf("String = %q", StallsMemAny.String())
	}
	if Event(0x9999).Name() == "" {
		t.Fatal("unknown event should still have a name")
	}
	for _, e := range Candidates {
		if e.Description() == "" {
			t.Fatalf("empty description for %v", e)
		}
	}
}

func TestCountersReadAddSub(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 50, Loads: 30, Stores: 10, StallsMemAny: 400}
	b := Counters{Cycles: 40, Instructions: 20, Loads: 10, Stores: 5, StallsMemAny: 100}
	d := a.Sub(b)
	if d.Cycles != 60 || d.Loads != 20 || d.StallsMemAny != 300 {
		t.Fatalf("Sub = %+v", d)
	}
	b.Add(d)
	if b != a {
		t.Fatalf("Add(Sub) != original: %+v vs %+v", b, a)
	}
	if got := a.Read(StallsMemAny); got != 400 {
		t.Fatalf("Read = %v", got)
	}
	if got := a.Read(Loads); got != 30 {
		t.Fatalf("Read(Loads) = %v", got)
	}
}

func TestReadPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counters
	c.Read(Event(0x1234))
}

func TestVPIEquation(t *testing.T) {
	// Equation 1: VPI = counter / (loads + stores).
	c := Counters{Loads: 80, Stores: 20, StallsMemAny: 4000}
	if got := c.VPI(StallsMemAny); got != 40 {
		t.Fatalf("VPI = %v, want 40", got)
	}
}

func TestVPIZeroDenominator(t *testing.T) {
	c := Counters{StallsMemAny: 500}
	if got := c.VPI(StallsMemAny); got != 0 {
		t.Fatalf("VPI with no memory instructions = %v, want 0", got)
	}
}

func TestCandidatesOrder(t *testing.T) {
	want := []Event{0x02A3, 0x06A3, 0x10A3, 0x14A3}
	for i, e := range Candidates {
		if e != want[i] {
			t.Fatalf("Candidates[%d] = %v", i, e)
		}
	}
}

func TestAllEventsReadable(t *testing.T) {
	c := Counters{
		Cycles: 1, Instructions: 2, Loads: 3, Stores: 4,
		CyclesL3Miss: 5, StallsL3Miss: 6, CyclesMemAny: 7, StallsMemAny: 8,
	}
	events := []Event{Cycles, Instructions, Loads, Stores,
		CyclesL3Miss, StallsL3Miss, CyclesMemAny, StallsMemAny}
	for i, e := range events {
		if got := c.Read(e); got != float64(i+1) {
			t.Fatalf("Read(%v) = %v, want %d", e, got, i+1)
		}
	}
}
