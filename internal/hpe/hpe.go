// Package hpe models the Intel hardware performance events (HPEs) Holmes
// uses to diagnose SMT interference on memory access. The four candidate
// events of the paper's Table 1 are defined here together with the
// architectural counters (cycles, instructions, loads, stores) that the
// VPI metric needs as its denominator.
//
// The counter *semantics* follow the Intel SDM descriptions:
//
//   - CYCLES_L3_MISS  (0x02A3): cycles while an L3-miss demand load is
//     outstanding — an occupancy count, not a stall count.
//   - STALLS_L3_MISS  (0x06A3): execution stall cycles while an L3-miss
//     demand load is outstanding.
//   - CYCLES_MEM_ANY  (0x10A3): cycles when the memory subsystem has any
//     outstanding load.
//   - STALLS_MEM_ANY  (0x14A3): execution stall cycles while the memory
//     subsystem has an outstanding load. This is the event Holmes selects.
//
// The machine simulator attributes cycles to these counters each tick; the
// distinction between occupancy and stall counting is what makes the
// Table 1 correlation study come out the way the paper reports (occupancy
// per instruction flattens — and slightly drops — under interference as
// miss-level parallelism degrades, while stall cycles per instruction track
// the inflated access latency almost perfectly).
package hpe

import "fmt"

// Event identifies a hardware performance event by its Intel event number
// (umask<<8 | event code), as listed in the paper's Table 1.
type Event uint16

// The four candidate HPEs from Table 1, plus the architectural events the
// VPI computation requires.
const (
	// CyclesL3Miss is CYCLE_ACTIVITY.CYCLES_L3_MISS (0x02A3).
	CyclesL3Miss Event = 0x02A3
	// StallsL3Miss is CYCLE_ACTIVITY.STALLS_L3_MISS (0x06A3).
	StallsL3Miss Event = 0x06A3
	// CyclesMemAny is CYCLE_ACTIVITY.CYCLES_MEM_ANY (0x10A3).
	CyclesMemAny Event = 0x10A3
	// StallsMemAny is CYCLE_ACTIVITY.STALLS_MEM_ANY (0x14A3). Holmes's pick.
	StallsMemAny Event = 0x14A3

	// Cycles counts unhalted core cycles (architectural).
	Cycles Event = 0x003C
	// Instructions counts retired instructions (architectural).
	Instructions Event = 0x00C0
	// Loads counts retired load instructions (MEM_INST_RETIRED.ALL_LOADS).
	Loads Event = 0x81D0
	// Stores counts retired store instructions (MEM_INST_RETIRED.ALL_STORES).
	Stores Event = 0x82D0
)

// Candidates lists the four Table 1 candidate events in paper order.
var Candidates = []Event{CyclesL3Miss, StallsL3Miss, CyclesMemAny, StallsMemAny}

// Name returns the short mnemonic used in the paper.
func (e Event) Name() string {
	switch e {
	case CyclesL3Miss:
		return "CYCLES_L3_MISS"
	case StallsL3Miss:
		return "STALLS_L3_MISS"
	case CyclesMemAny:
		return "CYCLES_MEM_ANY"
	case StallsMemAny:
		return "STALLS_MEM_ANY"
	case Cycles:
		return "CPU_CLK_UNHALTED"
	case Instructions:
		return "INST_RETIRED"
	case Loads:
		return "MEM_INST_RETIRED.ALL_LOADS"
	case Stores:
		return "MEM_INST_RETIRED.ALL_STORES"
	}
	return fmt.Sprintf("EVENT_%#04x", uint16(e))
}

// Description returns the Table 1 description of the event.
func (e Event) Description() string {
	switch e {
	case CyclesL3Miss:
		return "Cycles while L3 cache miss demand load is outstanding."
	case StallsL3Miss:
		return "Execution stalls while L3 cache miss demand load is outstanding."
	case CyclesMemAny:
		return "Cycles when memory subsystem has an outstanding load."
	case StallsMemAny:
		return "Execution stalls when memory subsystem has outstanding load."
	}
	return e.Name()
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s(%#04x)", e.Name(), uint16(e))
}

// Counters holds the cumulative counter state of one logical CPU. All
// values are monotonically nondecreasing, mirroring real PMU counters; a
// reader computes deltas between two samples.
type Counters struct {
	Cycles       float64 // unhalted cycles
	Instructions float64 // retired instructions
	Loads        float64 // retired loads
	Stores       float64 // retired stores

	CyclesL3Miss float64 // occupancy: >=1 L3-miss demand load outstanding
	StallsL3Miss float64 // stalls with L3-miss outstanding
	CyclesMemAny float64 // occupancy: >=1 memory load outstanding
	StallsMemAny float64 // stalls with any memory load outstanding
}

// Read returns the cumulative value of event e.
func (c Counters) Read(e Event) float64 {
	switch e {
	case Cycles:
		return c.Cycles
	case Instructions:
		return c.Instructions
	case Loads:
		return c.Loads
	case Stores:
		return c.Stores
	case CyclesL3Miss:
		return c.CyclesL3Miss
	case StallsL3Miss:
		return c.StallsL3Miss
	case CyclesMemAny:
		return c.CyclesMemAny
	case StallsMemAny:
		return c.StallsMemAny
	}
	panic(fmt.Sprintf("hpe: unknown event %v", e))
}

// Sub returns c - o, the delta between two cumulative snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles - o.Cycles,
		Instructions: c.Instructions - o.Instructions,
		Loads:        c.Loads - o.Loads,
		Stores:       c.Stores - o.Stores,
		CyclesL3Miss: c.CyclesL3Miss - o.CyclesL3Miss,
		StallsL3Miss: c.StallsL3Miss - o.StallsL3Miss,
		CyclesMemAny: c.CyclesMemAny - o.CyclesMemAny,
		StallsMemAny: c.StallsMemAny - o.StallsMemAny,
	}
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Cycles += o.Cycles
	c.Instructions += o.Instructions
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.CyclesL3Miss += o.CyclesL3Miss
	c.StallsL3Miss += o.StallsL3Miss
	c.CyclesMemAny += o.CyclesMemAny
	c.StallsMemAny += o.StallsMemAny
}

// VPI computes the paper's Equation 1 for event e over this delta:
// counter value divided by retired LOAD+STORE instructions. It returns 0
// when no memory instructions retired, so idle CPUs read as
// interference-free rather than producing NaNs.
func (c Counters) VPI(e Event) float64 {
	den := c.Loads + c.Stores
	if den <= 0 {
		return 0
	}
	return c.Read(e) / den
}
