package hpe_test

import (
	"fmt"

	"github.com/holmes-colocation/holmes/internal/hpe"
)

// The VPI metric is the paper's Equation 1: a counter value divided by
// the retired LOAD+STORE instructions of the same interval.
func ExampleCounters_VPI() {
	interval := hpe.Counters{
		Loads:        800,
		Stores:       200,
		StallsMemAny: 40_000,
	}
	fmt.Printf("VPI(%s) = %.0f\n", hpe.StallsMemAny.Name(), interval.VPI(hpe.StallsMemAny))
	// Output: VPI(STALLS_MEM_ANY) = 40
}

// Deltas between two cumulative snapshots give per-interval readings,
// the way the Holmes monitor samples each invocation.
func ExampleCounters_Sub() {
	var prev, now hpe.Counters
	now.Loads, now.StallsMemAny = 1000, 30_000
	prev.Loads, prev.StallsMemAny = 400, 6_000
	d := now.Sub(prev)
	fmt.Printf("loads=%.0f stalls=%.0f\n", d.Loads, d.StallsMemAny)
	// Output: loads=600 stalls=24000
}
