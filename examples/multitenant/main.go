// Multitenant: two latency-critical services — a Redis cache on bursty
// traffic and a RocksDB store on steady reads — share one server's
// reserved CPU pool while batch analytics stream through Yarn. The
// scenario API (the same engine behind cmd/holmes-sim) runs the mix under
// Holmes and under PerfIso and compares what each tenant experiences.
//
// This goes one step beyond the paper's evaluation, which co-locates one
// service at a time; Holmes's design (§4) supports multiple registered
// services out of the box.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"os"

	"github.com/holmes-colocation/holmes/internal/scenario"
)

func main() {
	base := scenario.Spec{
		Name:    "multi-tenant",
		Machine: scenario.MachineSpec{Cores: 16},
		Services: []scenario.ServiceSpec{
			{
				Name: "cache", Store: "redis", Workload: "a", RPS: 9_000,
				BurstSeconds: [2]float64{3, 5}, GapSeconds: [2]float64{0.5, 1},
			},
			{Name: "catalog", Store: "rocksdb", Workload: "b", RPS: 18_000},
		},
		Batch: &scenario.BatchSpec{
			Continuous:     true,
			ConcurrentJobs: 3,
			Kinds:          []string{"kmeans", "sort", "pagerank"},
		},
		WarmupSeconds:   2,
		DurationSeconds: 10,
		Seed:            1,
	}

	for _, sched := range []string{"holmes", "perfiso"} {
		spec := base
		spec.Scheduler = sched
		fmt.Printf("=== scheduler: %s ===\n", sched)
		rep, err := scenario.Run(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(rep.Render())
	}
	fmt.Println(`Both tenants keep near-Alone latency under Holmes while the machine
stays busy; under PerfIso the batch jobs sitting on the tenants'
hyperthread siblings inflate both services' tails at once.`)
}
