// Tuning: the §6.4 parameter-sensitivity study on a single service. The
// deallocation threshold E trades latency for utilization: a low E evicts
// batch siblings at the first sign of interference, a high E tolerates
// interference for longer. The paper finds E=40 keeps latency closest to
// Alone; this example sweeps E for a chosen service and prints the
// normalized latency plus the utilization cost of each setting.
//
//	go run ./examples/tuning [store]
package main

import (
	"fmt"
	"os"

	"github.com/holmes-colocation/holmes/internal/core"
	"github.com/holmes-colocation/holmes/internal/experiments"
)

func main() {
	store := "redis"
	if len(os.Args) > 1 {
		store = os.Args[1]
	}
	const duration = 6_000_000_000

	fmt.Printf("sweeping threshold E for %s under workload-a...\n\n", store)

	aloneCfg := experiments.DefaultColocation(store, "a", experiments.Alone)
	aloneCfg.DurationNs = duration
	alone, err := experiments.RunColocation(aloneCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	aSum := alone.Latency.Summarize()

	fmt.Printf("%-6s %-12s %-12s %-12s %-12s %-10s\n",
		"E", "avg/alone", "p90/alone", "p99/alone", "CPU util", "evictions")
	for e := 40.0; e <= 80; e += 10 {
		hc := core.DefaultConfig()
		hc.E = e
		hc.SNs = 500_000_000
		cfg := experiments.DefaultColocation(store, "a", experiments.Holmes)
		cfg.DurationNs = duration
		cfg.HolmesConfig = &hc
		r, err := experiments.RunColocation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		s := r.Latency.Summarize()
		fmt.Printf("%-6.0f %-12.3f %-12.3f %-12.3f %-12s %-10d\n",
			e, s.Mean/aSum.Mean, s.P90/aSum.P90, s.P99/aSum.P99,
			fmt.Sprintf("%.1f%%", 100*r.AvgCPUUtil), r.Deallocations)
	}
	fmt.Println("\nLower E keeps latency near Alone (ratio ~1.0) at a small utilization")
	fmt.Println("cost; higher E admits interference before reacting. The paper adopts E=40.")
}
