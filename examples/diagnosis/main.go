// Diagnosis: reproduce the paper's metric-selection study (§3.1). The
// measurement program issues fixed-size DRAM requests at increasing rates
// from one thread and then from two sibling hardware threads, recording
// the per-request latency and the VPI of all four candidate hardware
// performance events. Pearson correlation then picks the event that best
// tracks memory access latency — STALLS_MEM_ANY (0x14A3), as in Table 1.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"

	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/hpe"
)

func main() {
	fmt.Println("running the §3.1 measurement sweep (single thread, then sibling pairs)...")
	r := experiments.RunSweep(300_000_000, 1)

	fmt.Println()
	fmt.Println(r.RenderTable1())

	fmt.Println("How the saturated thread degrades as its sibling ramps up:")
	fmt.Printf("%-14s %-12s %-12s %-14s\n", "sibling RPS", "achieved", "latency us", "VPI(0x14a3)")
	for _, pt := range r.Sweep.MaxThread {
		fmt.Printf("%-14.0f %-12.0f %-12.1f %-14.1f\n",
			pt.TargetRPS, pt.AchievedRPS, pt.MeanLatNs/1e3, pt.VPI[hpe.StallsMemAny])
	}
	fmt.Println("\nThe peak rate collapses from ~74k to ~45k RPS while latency and the")
	fmt.Println("selected VPI rise in lockstep — the signature Holmes's scheduler keys on.")
}
