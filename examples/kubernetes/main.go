// Kubernetes: the paper's §8 future work, running. A kubelet-style node
// agent (internal/kubelite) materializes pods in the Kubernetes cgroup
// layout; Guaranteed pods are registered with Holmes as latency-critical
// automatically, and BestEffort pods are discovered through the
// best-effort cgroup subtree — no administrator-supplied PIDs anywhere.
//
//	go run ./examples/kubernetes
package main

import (
	"fmt"
	"os"

	"github.com/holmes-colocation/holmes/internal/batch"
	"github.com/holmes-colocation/holmes/internal/cgroupfs"
	"github.com/holmes-colocation/holmes/internal/kernel"
	"github.com/holmes-colocation/holmes/internal/kubelite"
	"github.com/holmes-colocation/holmes/internal/kvstore/redis"
	"github.com/holmes-colocation/holmes/internal/lcservice"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/ycsb"
)

func main() {
	m := machine.New(machine.DefaultConfig())
	k := kernel.New(m)
	fs := cgroupfs.NewFS()

	kl, err := kubelite.Start(k, fs, kubelite.DefaultConfig())
	if err != nil {
		fail(err)
	}

	// A Guaranteed pod: the Redis cache, admitted through the kubelet.
	store := redis.New(redis.DefaultConfig())
	svc := lcservice.Launch(k, store, lcservice.DefaultConfigFor("redis"))
	gcfg := ycsb.DefaultConfig(ycsb.WorkloadA)
	gcfg.RecordCount = 30_000
	gen := ycsb.NewGenerator(gcfg)
	svc.Load(gen)
	if _, err := kl.RunServicePod("redis-cache", svc.Process()); err != nil {
		fail(err)
	}
	fmt.Println("admitted Guaranteed pod redis-cache ->", "/kubepods/guaranteed/pod-redis-cache")
	fmt.Println("  (kubelet registered its PID with Holmes; threads pinned to",
		kl.Holmes().ReservedCPUs().CPUs(), ")")

	// BestEffort pods: the analytics fleet.
	for i, kind := range []batch.Kind{batch.KMeans, batch.Sort, batch.PageRank} {
		name := fmt.Sprintf("analytics-%d", i)
		if _, err := kl.RunPod(kubelite.PodSpec{
			Name: name, QoS: kubelite.BestEffort,
			Containers: 3, ThreadsPerContainer: 3,
			Kind: kind, MemoryBytes: 2 << 30,
		}); err != nil {
			fail(err)
		}
		fmt.Printf("admitted BestEffort pod %s (%s)\n", name, kind)
	}

	// Traffic.
	tr := ycsb.NewTraffic(3e9, 5e9, 5e8, 1e9, 10_000, 1)
	client := lcservice.NewClient(svc, gen, tr)
	client.Start()

	fmt.Println("\nsimulating 10 seconds of co-located operation...")
	m.RunFor(2_000_000_000)
	svc.ResetLatencies()
	m.RunFor(10_000_000_000)
	client.Stop()

	sum := svc.Latencies().Summarize()
	_, dealloc, realloc, expand := kl.Holmes().Stats()
	var busy float64
	n := m.Topology().LogicalCPUs()
	for p := 0; p < n; p++ {
		busy += m.BusyCycles(p)
	}
	util := busy / (m.Config().FreqGHz * 12e9 * float64(n))

	fmt.Printf("\nredis-cache latency: mean=%.1fus p90=%.1fus p99=%.1fus over %d queries\n",
		sum.Mean/1e3, sum.P90/1e3, sum.P99/1e3, sum.Count)
	fmt.Printf("node utilization:    %.1f%% (whole 12 s window)\n", 100*util)
	fmt.Printf("holmes actions:      %d evictions, %d restorations, %d expansions\n",
		dealloc, realloc, expand)

	// Scale the analytics fleet down; Holmes sees the cgroups disappear.
	if err := kl.DeletePod("analytics-0"); err != nil {
		fail(err)
	}
	fmt.Println("\ndeleted analytics-0; remaining pods:", kl.Pods())
	fmt.Println("\nThe cluster manager owns pod lifecycles end to end — the §8 goal —")
	fmt.Println("while Holmes keeps the Guaranteed tenant's tail latency intact.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
