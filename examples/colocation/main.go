// Colocation: the paper's headline scenario end to end. A Redis-like
// service receives bursty YCSB traffic while HiBench-style batch jobs
// stream through a Yarn node manager; the run is repeated under the three
// evaluation settings (Alone, Holmes, PerfIso) and the resulting query
// latency, utilization and batch throughput are compared — the content of
// Figs. 7 and 12 and Table 3.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"os"

	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/trace"
)

func main() {
	tb := trace.NewTable("Redis + batch jobs under three settings (workload-a, 8 s window)",
		"setting", "mean us", "p90 us", "p99 us", "CPU util", "batch jobs", "evictions")
	for _, setting := range experiments.Settings() {
		cfg := experiments.DefaultColocation("redis", "a", setting)
		cfg.DurationNs = 8_000_000_000
		fmt.Printf("running %s...\n", setting)
		res, err := experiments.RunColocation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		s := res.Latency.Summarize()
		tb.AddRow(string(setting),
			fmt.Sprintf("%.1f", s.Mean/1e3),
			fmt.Sprintf("%.1f", s.P90/1e3),
			fmt.Sprintf("%.1f", s.P99/1e3),
			fmt.Sprintf("%.1f%%", 100*res.AvgCPUUtil),
			res.CompletedJobs,
			res.Deallocations)
	}
	fmt.Println()
	fmt.Println(tb.String())
	fmt.Println(`Reading the table:
  - Alone is the latency ideal but wastes the server (single-digit util).
  - PerfIso fills the machine but its HT-oblivious isolation lets batch
    land on the service's hyperthread siblings, inflating the tail.
  - Holmes matches Alone's latency at co-location utilization by evicting
    batch from LC siblings whenever the VPI metric crosses E=40.`)
}
