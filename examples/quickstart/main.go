// Quickstart: build a simulated SMT server, pin a memory-bound victim
// thread and a batch aggressor on the two hardware threads of one
// physical core, and watch the VPI metric (STALLS_MEM_ANY per LOAD+STORE
// instruction, the paper's Equation 1) diagnose the interference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/holmes-colocation/holmes/internal/cpuid"
	"github.com/holmes-colocation/holmes/internal/hpe"
	"github.com/holmes-colocation/holmes/internal/kernel"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/perf"
	"github.com/holmes-colocation/holmes/internal/workload"
)

// keepBusy feeds a thread an endless chain of identical work items.
func keepBusy(th *kernel.Thread, cost workload.Cost) {
	var push func(int64)
	push = func(int64) {
		th.HW.Push(workload.Item{Cost: cost, OnComplete: push})
	}
	push(0)
}

func main() {
	// A 16-core server with Hyper-Threading: 32 logical CPUs, where
	// logical CPU i and i+16 share a physical core.
	m := machine.New(machine.DefaultConfig())
	k := kernel.New(m)
	fmt.Println("machine:", m.Describe())

	// The victim: a service-like thread pinned to logical CPU 0,
	// touching DRAM on every request.
	victim := k.Spawn("victim-service", 1)
	_ = k.SetAffinity(victim.Threads()[0].TID, cpuid.MaskOf(0))
	victimWork := workload.MemRead(workload.DRAM, 100)
	victimWork.Add(workload.MemRead(workload.L1, 400))
	victimWork.Add(workload.Compute(2000))
	keepBusy(victim.Threads()[0], victimWork)

	// Open the VPI counter group on the victim's CPU, exactly as the
	// Holmes daemon does through perf_event_open.
	vpi, err := perf.OpenVPI(m, hpe.StallsMemAny, 0)
	if err != nil {
		panic(err)
	}

	// Phase 1: the victim runs alone.
	m.RunFor(100_000_000) // 100 ms
	quiet := vpi.Sample()
	fmt.Printf("victim alone:            VPI = %6.1f\n", quiet)

	// Phase 2: a batch aggressor lands on the sibling hardware thread.
	sibling := m.Sibling(0)
	aggressor := k.Spawn("batch-aggressor", 1)
	_ = k.SetAffinity(aggressor.Threads()[0].TID, cpuid.MaskOf(sibling))
	keepBusy(aggressor.Threads()[0], workload.ReadBytes(workload.DRAM, 256<<10))

	m.RunFor(100_000_000)
	noisy := vpi.Sample()
	fmt.Printf("with sibling aggressor:  VPI = %6.1f  (%.2fx)\n", noisy, noisy/quiet)

	// Phase 3: evict the aggressor (what Holmes does when VPI >= E=40).
	_ = k.SetAffinity(aggressor.Threads()[0].TID, cpuid.MaskOf(1)) // separate core
	m.RunFor(100_000_000)
	after := vpi.Sample()
	fmt.Printf("aggressor on own core:   VPI = %6.1f\n", after)

	fmt.Println("\nThe VPI metric quantifies SMT interference on memory access:")
	fmt.Printf("it crossed the paper's threshold E=40 only while the aggressor\nshared the physical core (%0.1f -> %0.1f -> %0.1f).\n",
		quiet, noisy, after)
}
