module github.com/holmes-colocation/holmes

go 1.22
