package holmes_test

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment on a compressed measurement window
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/holmes-bench prints the full rows
// and series; these benchmarks track the numbers that summarize each
// result's shape.

import (
	"sync"
	"testing"

	"github.com/holmes-colocation/holmes/internal/cluster"
	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/hpe"
	"github.com/holmes-colocation/holmes/internal/perfbench"
)

// benchSuite shares the co-location matrix across the Fig. 7-12/Table 3
// benchmarks, exactly as the harness does.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(6_000_000_000, 1)
	})
	return suite
}

func BenchmarkFig2MemoryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(300_000_000, 1)
		base := r.Cases[0].Summary.Mean
		sib := r.Cases[2].Summary.Mean
		b.ReportMetric(base, "alone-ns/block")
		b.ReportMetric(sib/base, "sibling-inflation-x")
	}
}

func BenchmarkFig3RedisColocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(1_500_000_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		sep := r.Settings[experiments.Fig3CoSeparate]
		hyper := r.Settings[experiments.Fig3CoHyper]
		b.ReportMetric(hyper.Mean/sep.Mean, "cohyper-avg-x")
		b.ReportMetric(hyper.P99/sep.P99, "cohyper-p99-x")
	}
}

func BenchmarkTable1HPECorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunSweep(150_000_000, 1)
		for _, c := range r.Sweep.Correlations() {
			if c.Event == hpe.StallsMemAny {
				b.ReportMetric(c.Corr, "corr-0x14a3")
			}
			if c.Event == hpe.CyclesL3Miss {
				b.ReportMetric(c.Corr, "corr-0x02a3")
			}
		}
	}
}

func BenchmarkFig4Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunSweep(150_000_000, 1)
		pts := r.Sweep.MaxThread
		if len(pts) > 0 {
			b.ReportMetric(pts[len(pts)-1].MeanLatNs/pts[0].MeanLatNs, "latency-rise-x")
		}
	}
}

func BenchmarkFig5VPIEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig5(800_000_000, 1, []string{"redis", "memcached"})
		if err != nil {
			b.Fatal(err)
		}
		var maxAvg, maxVPI float64
		for _, p := range r.Points {
			if p.AvgRel > maxAvg {
				maxAvg = p.AvgRel
			}
			if p.VPIRel > maxVPI {
				maxVPI = p.VPIRel
			}
		}
		b.ReportMetric(maxAvg, "max-latency-delta")
		b.ReportMetric(maxVPI, "max-vpi-delta")
	}
}

// benchLatencyFig reports the Holmes-vs-PerfIso reductions for one store
// under workload-a (the headline numbers of Figs. 7-10).
func benchLatencyFig(b *testing.B, store string) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		h, err := s.Get(store, "a", experiments.Holmes)
		if err != nil {
			b.Fatal(err)
		}
		p, err := s.Get(store, "a", experiments.PerfIso)
		if err != nil {
			b.Fatal(err)
		}
		hs, ps := h.Latency.Summarize(), p.Latency.Summarize()
		b.ReportMetric(100*(1-hs.Mean/ps.Mean), "avg-reduction-%")
		b.ReportMetric(100*(1-hs.P99/ps.P99), "p99-reduction-%")
	}
}

func BenchmarkFig7RedisLatency(b *testing.B)      { benchLatencyFig(b, "redis") }
func BenchmarkFig8RocksDBLatency(b *testing.B)    { benchLatencyFig(b, "rocksdb") }
func BenchmarkFig9WiredTigerLatency(b *testing.B) { benchLatencyFig(b, "wiredtiger") }
func BenchmarkFig10MemcachedLatency(b *testing.B) { benchLatencyFig(b, "memcached") }

func BenchmarkFig11SLOViolation(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		alone, err := s.Get("redis", "a", experiments.Alone)
		if err != nil {
			b.Fatal(err)
		}
		slo := alone.Latency.Percentile(90)
		h, _ := s.Get("redis", "a", experiments.Holmes)
		p, _ := s.Get("redis", "a", experiments.PerfIso)
		b.ReportMetric(100*h.Latency.FractionAbove(slo), "holmes-violation-%")
		b.ReportMetric(100*p.Latency.FractionAbove(slo), "perfiso-violation-%")
	}
}

func BenchmarkFig12CPUUtilization(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		h, err := s.Get("redis", "a", experiments.Holmes)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := s.Get("redis", "a", experiments.PerfIso)
		a, _ := s.Get("redis", "a", experiments.Alone)
		b.ReportMetric(100*h.AvgCPUUtil, "holmes-util-%")
		b.ReportMetric(100*p.AvgCPUUtil, "perfiso-util-%")
		b.ReportMetric(100*a.AvgCPUUtil, "alone-util-%")
	}
}

func BenchmarkFig13VPITimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultColocation("rocksdb", "a", experiments.PerfIso)
		cfg.DurationNs = 4_000_000_000
		cfg.VPISampleNs = 50_000_000
		r, err := experiments.RunColocation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.VPISeries.Mean(), "perfiso-mean-vpi")
	}
}

func BenchmarkTable3Throughput(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		h, err := s.Get("redis", "a", experiments.Holmes)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := s.Get("redis", "a", experiments.PerfIso)
		b.ReportMetric(float64(h.CompletedJobs), "holmes-jobs")
		b.ReportMetric(float64(p.CompletedJobs), "perfiso-jobs")
	}
}

func BenchmarkFig14Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig14(3_000_000_000, 0, 1, []string{"redis"}, 1)
		if err != nil {
			b.Fatal(err)
		}
		var at40, at80 float64
		for _, p := range r.Points {
			if p.E == 40 {
				at40 = p.Avg
			}
			if p.E == 80 {
				at80 = p.Avg
			}
		}
		b.ReportMetric(at40, "E40-normalized-avg")
		b.ReportMetric(at80, "E80-normalized-avg")
	}
}

func BenchmarkTable4Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable4(1, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Approach {
			case "Holmes":
				b.ReportMetric(float64(row.ConvergenceNs)/1e3, "holmes-us")
			case "Heracles":
				b.ReportMetric(float64(row.ConvergenceNs)/1e9, "heracles-s")
			}
		}
	}
}

func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOverhead(3_000_000_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.DaemonCPUFrac, "daemon-cpu-%")
	}
}

// BenchmarkTickEngineIdle and BenchmarkTickEngineLoaded track the tick
// engine's hot-path trajectory — the same scenarios `holmes-bench -perf`
// pins into BENCH_tick.json — so `go test -bench=TickEngine .` compares
// a working tree against the recorded numbers.
func BenchmarkTickEngineIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := perfbench.RunIdle(500_000_000, 1)
		b.ReportMetric(r.TicksPerSec/1e6, "Mticks/s")
		b.ReportMetric(r.NsPerTick, "ns/tick")
		b.ReportMetric(r.AllocsPerTick, "allocs/tick")
	}
}

func BenchmarkTickEngineLoaded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := perfbench.RunLoaded(250_000_000, 1)
		b.ReportMetric(r.TicksPerSec/1e6, "Mticks/s")
		b.ReportMetric(r.NsPerTick, "ns/tick")
		b.ReportMetric(r.AllocsPerTick, "allocs/tick")
	}
}

// BenchmarkClusterPlacement measures one placement-scheduler decision
// over a 64-node registry — the control plane's hot path when the
// cluster experiment fans pods out across the fleet.
func BenchmarkClusterPlacement(b *testing.B) {
	states := make([]cluster.NodeState, 64)
	for i := range states {
		states[i] = cluster.NodeState{ID: i, HB: cluster.Heartbeat{
			Node:            i,
			SmoothedVPI:     float64((i * 7) % 60),
			ServiceThreads:  (i * 3) % 12,
			BatchThreads:    (i * 5) % 16,
			CapacityThreads: 32,
			Lendable:        i % 4,
		}}
	}
	req := cluster.PodRequest{Name: "batch-bench", Threads: 8}
	placer := cluster.VPIAware{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if placer.Place(states, req) < 0 {
			b.Fatal("no node fit")
		}
	}
}

// BenchmarkTrafficEngine measures the open-loop traffic control plane end
// to end: a 3-node cluster under the default diurnal topology, reported
// as control-plane rounds and dispatched arrivals per wall second.
func BenchmarkTrafficEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := perfbench.RunTrafficBench(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RoundsPerSec, "rounds/s")
		b.ReportMetric(r.ArrivalsPerSec, "arrivals/s")
	}
}
