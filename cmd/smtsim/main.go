// Command smtsim runs the SMT machine simulator on a declarative workload
// spec and reports per-CPU utilization, HPE counters and VPI — a direct
// window into the substrate the Holmes reproduction is built on.
//
// Usage:
//
//	smtsim [-duration 1s] [-cores 16] [-seed 1] <placement>...
//
// Each placement is lcpu:kind where kind is one of
//
//	mem      a closed-loop DRAM reader (the paper's m-thread)
//	compute  a floating-point kernel (the paper's c-thread)
//	mixed    a service-like mix of compute and memory accesses
//
// Example — reproduce the paper's core interference experiment:
//
//	smtsim 0:mem 16:mem    # two m-threads on hyperthread siblings
//	smtsim 0:mem 1:mem     # two m-threads on separate physical cores
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/holmes-colocation/holmes/internal/cpuid"
	"github.com/holmes-colocation/holmes/internal/hpe"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/workload"
)

type pinned map[int]*machine.Thread

func (p pinned) Assign(nowNs int64, assign []*machine.Thread) {
	for cpu, t := range p {
		assign[cpu] = t
	}
}

func kindCost(kind string) (workload.Cost, error) {
	switch kind {
	case "mem":
		return workload.ReadBytes(workload.DRAM, 1<<20), nil
	case "compute":
		return workload.Compute(2_000_000), nil
	case "mixed":
		c := workload.Compute(500_000)
		c.Add(workload.MemRead(workload.DRAM, 2_000))
		c.Add(workload.MemRead(workload.L3, 4_000))
		c.Add(workload.MemWrite(workload.L2, 1_000))
		return c, nil
	}
	return workload.Cost{}, fmt.Errorf("unknown kind %q", kind)
}

func main() {
	duration := flag.Duration("duration", time.Second, "simulated duration")
	cores := flag.Int("cores", 16, "physical cores (2 hardware threads each)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: smtsim [flags] lcpu:kind...  (e.g. smtsim 0:mem 16:mem)")
		os.Exit(2)
	}

	cfg := machine.DefaultConfig()
	cfg.Topology = cpuid.Topology{Sockets: 1, Cores: *cores}
	cfg.Seed = *seed
	m := machine.New(cfg)
	p := pinned{}
	m.SetScheduler(p)

	used := []int{}
	for _, arg := range flag.Args() {
		lcpuStr, kind, ok := strings.Cut(arg, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad placement %q (want lcpu:kind)\n", arg)
			os.Exit(2)
		}
		lcpu, err := strconv.Atoi(lcpuStr)
		if err != nil || lcpu < 0 || lcpu >= cfg.Topology.LogicalCPUs() {
			fmt.Fprintf(os.Stderr, "bad lcpu in %q (machine has %d logical CPUs)\n",
				arg, cfg.Topology.LogicalCPUs())
			os.Exit(2)
		}
		cost, err := kindCost(kind)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		th := m.NewThread(arg, nil)
		var push func(int64)
		push = func(int64) {
			th.Push(workload.Item{Cost: cost, OnComplete: push})
		}
		push(0)
		p[lcpu] = th
		used = append(used, lcpu)
	}

	fmt.Printf("simulating %v on %s\n\n", *duration, m.Describe())
	m.RunFor(duration.Nanoseconds())

	fmt.Printf("%-6s %-8s %-6s %-12s %-12s %-12s %-10s\n",
		"lcpu", "sibling", "util", "instructions", "stalls_mem", "loads+stores", "VPI(0x14a3)")
	for _, lcpu := range used {
		c := m.Counters(lcpu)
		util := m.BusyCycles(lcpu) / (cfg.FreqGHz * float64(duration.Nanoseconds()))
		fmt.Printf("%-6d %-8d %-6.2f %-12.3g %-12.3g %-12.3g %-10.1f\n",
			lcpu, m.Sibling(lcpu), util,
			c.Instructions, c.StallsMemAny, c.Loads+c.Stores,
			c.VPI(hpe.StallsMemAny))
	}
}
