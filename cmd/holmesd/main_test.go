package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/telemetry"
)

// TestLiveEndpointsDuringRun is the acceptance check for the live export:
// the telemetry handler must serve /metrics and /events over real HTTP
// while a colocation scenario is driving records into the set.
func TestLiveEndpointsDuringRun(t *testing.T) {
	set := telemetry.NewSet()
	srv := httptest.NewServer(set.Handler())
	defer srv.Close()

	cfg := experiments.DefaultColocation("redis", "a", experiments.Holmes)
	cfg.WarmupNs = 300_000_000
	cfg.DurationNs = 1_200_000_000
	cfg.Telemetry = set

	done := make(chan error, 1)
	go func() {
		_, err := experiments.RunColocation(cfg)
		done <- err
	}()

	// Poll /metrics while the run is live until the daemon's tick counter
	// shows up with a nonzero value.
	deadline := time.Now().Add(60 * time.Second)
	var metricsText string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon metrics never appeared; last /metrics:\n%s", metricsText)
		}
		metricsText = httpGet(t, srv.URL+"/metrics")
		if line := findLine(metricsText, "holmes_invocations_total "); line != "" &&
			!strings.HasSuffix(line, " 0") {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if ct := head(t, srv.URL+"/metrics"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}

	if err := <-done; err != nil {
		t.Fatalf("colocation run: %v", err)
	}

	// After the run: the decision log must decode and contain the batch
	// discoveries plus at least one sibling decision.
	var events struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Type   string  `json:"type"`
			TimeNs int64   `json:"time_ns"`
			CPU    int     `json:"cpu"`
			VPI    float64 `json:"vpi"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/events")), &events); err != nil {
		t.Fatalf("/events did not decode: %v", err)
	}
	if events.Total == 0 || len(events.Events) == 0 {
		t.Fatal("no decision events recorded")
	}
	types := map[string]int{}
	for _, ev := range events.Events {
		types[ev.Type]++
	}
	if types["BatchDiscovered"] == 0 {
		t.Fatalf("no BatchDiscovered events; saw %v", types)
	}
	if types["SiblingRevoked"]+types["SiblingGranted"] == 0 {
		t.Fatalf("no sibling decisions; saw %v", types)
	}

	// Type filter works.
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/events?type=BatchDiscovered")), &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events.Events {
		if ev.Type != "BatchDiscovered" {
			t.Fatalf("filter leaked %q", ev.Type)
		}
	}

	// /debug/holmes bundles info + metrics.
	var debug struct {
		Info    map[string]string            `json:"info"`
		Metrics []map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/holmes")), &debug); err != nil {
		t.Fatalf("/debug/holmes did not decode: %v", err)
	}
	if debug.Info["holmes.E"] != "40" {
		t.Fatalf("info missing threshold E: %v", debug.Info)
	}
	if len(debug.Metrics) == 0 {
		t.Fatal("debug bundle has no metrics")
	}

	// The kernel and cgroupfs instrumentation reported through the same
	// registry.
	if findLine(metricsText, "cgroupfs_events_total") == "" {
		t.Error("cgroupfs metrics missing from /metrics")
	}
	if findLine(metricsText, "kernel_migrations_total") == "" {
		t.Error("kernel metrics missing from /metrics")
	}

	// /spans serves the daemon's causal decision chains as JSON, and as a
	// schema-valid Chrome trace with ?format=chrome.
	var spans struct {
		Total   uint64 `json:"total"`
		Dropped uint64 `json:"dropped"`
		Spans   []struct {
			Kind string `json:"kind"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/spans")), &spans); err != nil {
		t.Fatalf("/spans did not decode: %v", err)
	}
	if spans.Total == 0 || len(spans.Spans) == 0 {
		t.Fatal("no spans recorded by the daemon")
	}
	kinds := map[string]bool{}
	for _, sp := range spans.Spans {
		kinds[sp.Kind] = true
	}
	for _, want := range []string{"CounterSample", "VPIEstimate", "MaskDecision"} {
		if !kinds[want] {
			t.Errorf("no %s spans in /spans; saw %v", want, kinds)
		}
	}
	chrome := httpGet(t, srv.URL+"/spans?format=chrome")
	if err := telemetry.ValidateChromeTrace([]byte(chrome)); err != nil {
		t.Fatalf("/spans?format=chrome fails schema check: %v", err)
	}

	// /timeline renders the same spans as an indented causal tree.
	timeline := httpGet(t, srv.URL+"/timeline")
	if !strings.Contains(timeline, "CounterSample") {
		t.Fatalf("/timeline has no decision chain:\n%.400s", timeline)
	}

	// /alerts decodes even with no burn engine attached (empty log).
	var alerts struct {
		Firing int     `json:"firing"`
		Alerts []Alert `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/alerts")), &alerts); err != nil {
		t.Fatalf("/alerts did not decode: %v", err)
	}
	if len(alerts.Alerts) != 0 {
		t.Fatalf("single-daemon run has no burn engine, yet /alerts has %d entries",
			len(alerts.Alerts))
	}
}

// Alert mirrors telemetry.Alert for decoding /alerts.
type Alert = telemetry.Alert

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func head(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.Header.Get("Content-Type")
}

// findLine returns the first exposition line starting with prefix.
func findLine(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}
