// Command holmesd runs the Holmes daemon on a live simulated server and
// narrates what it does: a latency-critical service receives bursty YCSB
// traffic while batch jobs stream through Yarn, and Holmes evicts and
// restores their access to the service's hyperthread siblings based on
// the VPI metric.
//
// Usage:
//
//	holmesd [-store redis|memcached|rocksdb|wiredtiger] [-workload a|b|e]
//	        [-duration 20s] [-E 40] [-interval 100us] [-seed 1] [-perfiso]
//	        [-http 127.0.0.1:9140]
//
// With -http, the daemon's telemetry is served live while the scenario
// runs: /metrics (Prometheus text), /events (JSON decision log),
// /spans (JSON causal spans; ?format=chrome for a Chrome trace-event
// export), /timeline (the span log as an indented causal text tree),
// /alerts (JSON burn-rate alert transitions) and /debug/holmes (JSON
// bundle). The server keeps running after the run so the final state can
// be inspected; interrupt to exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/holmes-colocation/holmes/internal/core"
	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/telemetry"
)

func main() {
	store := flag.String("store", "redis", "latency-critical service")
	wl := flag.String("workload", "a", "YCSB workload (a|b|e)")
	duration := flag.Duration("duration", 20*time.Second, "measured simulated duration")
	e := flag.Float64("E", 40, "VPI deallocation threshold")
	interval := flag.Duration("interval", 100*time.Microsecond, "monitor/scheduler interval")
	seed := flag.Uint64("seed", 1, "simulation seed")
	perfiso := flag.Bool("perfiso", false, "run the PerfIso baseline instead of Holmes")
	httpAddr := flag.String("http", "", "serve /metrics, /events and /debug/holmes on this address")
	flag.Parse()

	setting := experiments.Holmes
	if *perfiso {
		setting = experiments.PerfIso
	}
	cfg := experiments.DefaultColocation(*store, *wl, setting)
	cfg.DurationNs = duration.Nanoseconds()
	cfg.Seed = *seed
	if setting == experiments.Holmes {
		hc := core.DefaultConfig()
		hc.E = *e
		hc.IntervalNs = interval.Nanoseconds()
		hc.SNs = 500_000_000
		cfg.HolmesConfig = &hc
	}
	cfg.VPISampleNs = 100_000_000

	var set *telemetry.Set
	if *httpAddr != "" {
		set = telemetry.NewSet()
		cfg.Telemetry = set
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		go func() { _ = http.Serve(ln, set.Handler()) }()
		fmt.Printf("telemetry: http://%s/metrics /events /spans /timeline /alerts /debug/holmes\n", ln.Addr())
	}

	fmt.Printf("holmesd: %s + %s workload-%s for %v of simulated time (seed %d)\n",
		setting, *store, *wl, *duration, *seed)
	res, err := experiments.RunColocation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	sum := res.Latency.Summarize()
	fmt.Printf("\nquery latency: mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus (%d queries)\n",
		sum.Mean/1e3, sum.P50/1e3, sum.P90/1e3, sum.P99/1e3, sum.Count)
	fmt.Printf("machine utilization: %.1f%%  (LC CPUs: %.1f%%)\n",
		100*res.AvgCPUUtil, 100*res.LCUtil)
	fmt.Printf("batch jobs completed: %d\n", res.CompletedJobs)
	if setting == experiments.Holmes {
		fmt.Printf("scheduler actions: %d sibling evictions, %d restorations, %d pool expansions\n",
			res.Deallocations, res.Reallocations, res.Expansions)
		fmt.Printf("daemon overhead: %.2f%% of one core\n", 100*res.DaemonUtil)
	}
	if res.VPISeries.Len() > 0 {
		fmt.Printf("\nVPI on LC CPUs over time (mean %.1f, max %.1f):\n",
			res.VPISeries.Mean(), res.VPISeries.Max())
		fmt.Print(res.VPISeries.Downsample(20).TSV())
	}
	if set != nil {
		fmt.Printf("\ntelemetry: %d decision events recorded; serving until interrupted\n",
			set.Tracer.Ring().Total())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
