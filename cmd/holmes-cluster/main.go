// Command holmes-cluster runs the multi-node control plane: a simulated
// fleet of kubelite nodes (each a full machine + kernel + cgroupfs +
// Holmes daemon) coordinated by the VPI-aware placement scheduler and
// reconciler of internal/cluster.
//
// Usage:
//
//	holmes-cluster [flags]                   run the default 6-node cluster
//	holmes-cluster -placer both [flags]      compare VPI-aware vs bin-packing
//	holmes-cluster -spec cluster.json        run a JSON-described cluster
//
// Every run is deterministic: per-node seeds derive from (seed, node ID),
// so -parallel N changes wall-clock time, never the output.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/holmes-colocation/holmes/internal/cluster"
	"github.com/holmes-colocation/holmes/internal/runner"
)

func main() {
	specPath := flag.String("spec", "", "JSON cluster spec (overrides the shape flags)")
	nodes := flag.Int("nodes", 0, "fleet size (default 6)")
	cores := flag.Int("cores", 0, "physical cores per node (default 8)")
	placer := flag.String("placer", "", `placement policy: "vpi", "binpack" or "both" (default vpi)`)
	duration := flag.Float64("duration", 0, "measured window, simulated seconds (default 3)")
	warmup := flag.Float64("warmup", -1, "warmup before measurement, simulated seconds (default 1)")
	batchPods := flag.Int("batch-pods", -1, "total BestEffort pods submitted (default 48)")
	services := flag.Int("services", 0, "run only the first N services of the spec (0 = all)")
	evictVPI := flag.Float64("evict-vpi", 0, "reconciler eviction threshold (default 25)")
	hotRounds := flag.Int("hot-rounds", 0, "consecutive hot heartbeats before eviction (default 2)")
	seed := flag.Uint64("seed", 0, "simulation seed (default 1)")
	parallel := flag.Int("parallel", runner.DefaultParallelism(),
		"max concurrent node simulations (1 = serial; output identical either way)")
	flag.Usage = usage
	flag.Parse()

	spec := cluster.DefaultSpec()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fatal(err)
		}
		spec, err = cluster.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *nodes > 0 {
		spec.Nodes = *nodes
	}
	if *cores > 0 {
		spec.CoresPerNode = *cores
	}
	if *duration > 0 {
		spec.DurationSeconds = *duration
	}
	if *warmup >= 0 {
		spec.WarmupSeconds = *warmup
	}
	if *batchPods >= 0 {
		spec.Batch.Pods = *batchPods
	}
	if *services > 0 && *services < len(spec.Services) {
		spec.Services = spec.Services[:*services]
	}
	if *evictVPI > 0 {
		spec.EvictVPI = *evictVPI
	}
	if *hotRounds > 0 {
		spec.HotRounds = *hotRounds
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	opt := cluster.RunOptions{Workers: *parallel}
	placers := []string{spec.Placer}
	switch *placer {
	case "":
	case "both":
		placers = []string{cluster.PlacerVPI, cluster.PlacerBinPack}
	default:
		placers = []string{*placer}
	}
	for i, p := range placers {
		spec.Placer = p
		res, err := cluster.Run(spec, opt)
		if err != nil {
			fatal(err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(res.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, `holmes-cluster runs a simulated multi-node cluster under the
VPI-aware placement scheduler (internal/cluster).

Flags:
  -spec FILE      JSON cluster spec; flags below override its shape fields
  -nodes N        fleet size (default 6)
  -cores N        physical cores per node (default 8)
  -placer P       "vpi", "binpack", or "both" for a side-by-side comparison
  -duration S     measured window in simulated seconds (default 3)
  -warmup S       warmup in simulated seconds (default 1)
  -batch-pods N   total BestEffort pods submitted (default 48)
  -services N     run only the first N services of the spec (0 = all)
  -evict-vpi V    reconciler eviction threshold on the node VPI trend (default 25)
  -hot-rounds N   consecutive hot heartbeats before an eviction (default 2)
  -seed N         simulation seed (default 1)
  -parallel N     max concurrent node simulations (default GOMAXPROCS);
                  per-node seeds derive from (seed, node ID), so the
                  output is byte-identical at any parallelism
`)
}
