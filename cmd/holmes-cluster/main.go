// Command holmes-cluster runs the multi-node control plane: a simulated
// fleet of kubelite nodes (each a full machine + kernel + cgroupfs +
// Holmes daemon) coordinated by the VPI-aware placement scheduler and
// reconciler of internal/cluster.
//
// Usage:
//
//	holmes-cluster [flags]                   run the default 6-node cluster
//	holmes-cluster -placer both [flags]      compare VPI-aware vs bin-packing
//	holmes-cluster -spec cluster.json        run a JSON-described cluster
//	holmes-cluster -chaos [flags]            inject the default fault schedule
//	holmes-cluster -chaos-spec faults.json   inject a JSON-described schedule
//	holmes-cluster -traffic 1000000          drive a modeled 1M-user diurnal day
//	holmes-cluster -topology topo.json       drive a JSON-described traffic topology
//	holmes-cluster -storm 2000000            retry-storm scenario: flash crowd + node crash
//	holmes-cluster -nodes 256 -placer score -lod auto
//	                                         datacenter-scale fleet: scoring placement
//	                                         over the sharded registry, quiescent nodes
//	                                         fast-forwarded
//
// Every run is deterministic: per-node seeds derive from (seed, node ID),
// so -parallel N changes wall-clock time, never the output. Fault
// schedules are equally seed-derived, so chaos runs replay exactly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/holmes-colocation/holmes/internal/cluster"
	"github.com/holmes-colocation/holmes/internal/faults"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/obs"
	"github.com/holmes-colocation/holmes/internal/report"
	"github.com/holmes-colocation/holmes/internal/runner"
	"github.com/holmes-colocation/holmes/internal/scenario"
	"github.com/holmes-colocation/holmes/internal/telemetry"
	"github.com/holmes-colocation/holmes/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("holmes-cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "JSON cluster spec (overrides the shape flags)")
	nodes := fs.Int("nodes", 0, "fleet size (default 6)")
	cores := fs.Int("cores", 0, "physical cores per node (default 8)")
	placer := fs.String("placer", "", `placement policy: "vpi", "binpack", "score" or "both" (default vpi)`)
	lod := fs.String("lod", "", `node fidelity: "full" or "auto" (fast-forward quiescent nodes; default full)`)
	duration := fs.Float64("duration", 0, "measured window, simulated seconds (default 3)")
	warmup := fs.Float64("warmup", -1, "warmup before measurement, simulated seconds (default 1)")
	batchPods := fs.Int("batch-pods", -1, "total BestEffort pods submitted (default 48)")
	services := fs.Int("services", 0, "run only the first N services of the spec (0 = all)")
	evictVPI := fs.Float64("evict-vpi", 0, "reconciler eviction threshold (default 25)")
	hotRounds := fs.Int("hot-rounds", 0, "consecutive hot heartbeats before eviction (default 2)")
	seed := fs.Uint64("seed", 0, "simulation seed (default 1)")
	chaos := fs.Bool("chaos", false, "inject the default fault schedule (faults.DefaultSchedule)")
	chaosSpec := fs.String("chaos-spec", "", "JSON fault schedule to inject (overrides -chaos)")
	trafficUsers := fs.Int("traffic", 0, "attach the default open-loop traffic topology modeling N users")
	topoPath := fs.String("topology", "", "JSON traffic topology (replicated services + programs; overrides -traffic)")
	stormUsers := fs.Int("storm", 0, "run the retry-storm scenario modeling N users: storm topology, resilient client stack, scripted node crash at the flash crowd's onset")
	deadlineMs := fs.Float64("deadline-ms", 0, "override every service's per-request deadline, milliseconds")
	retries := fs.Int("retries", 0, "override every service's total attempts per request (1 = no retries)")
	retryBudget := fs.Float64("retry-budget", -1, "override the retry budget as a fraction of recent successes (0 = unlimited)")
	shedLimit := fs.Int("shed-limit", -1, "override the replica-side admission concurrency limit (0 = no shedding)")
	noResilience := fs.Bool("no-resilience", false, "strip the resilience layer from every service (no deadlines, retries, breakers or shedding)")
	noDegrade := fs.Bool("no-degrade", false, "disable graceful degradation (watchdog, re-scan, failure detector)")
	parallel := fs.Int("parallel", runner.DefaultParallelism(),
		"max concurrent node simulations (1 = serial; output identical either way)")
	traceOut := fs.String("trace-out", "", "write the merged span timeline to FILE (.jsonl = one span per line, otherwise Chrome trace-event JSON)")
	flightOut := fs.String("flight-out", "", "write the flight-recorder post-mortem bundle to FILE")
	dashboard := fs.Bool("dashboard", false, "print the fleet observability dashboard after the run")
	noBatch := fs.Bool("no-interval-batch", false,
		"disable the interval-batched loaded path (escape hatch; output is bit-identical either way)")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *noBatch {
		machine.SetDefaultIntervalBatching(false)
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "holmes-cluster: "+format+"\n", a...)
		return 1
	}
	// Reject nonsense values the "0 means default" convention would
	// otherwise swallow silently.
	if *nodes < 0 {
		return fail("-nodes %d must be positive", *nodes)
	}
	if *cores < 0 {
		return fail("-cores %d must be positive", *cores)
	}
	if *duration < 0 {
		return fail("-duration %g must be positive (simulated seconds)", *duration)
	}
	if *batchPods < -1 {
		return fail("-batch-pods %d must not be negative", *batchPods)
	}
	if *services < 0 {
		return fail("-services %d must not be negative", *services)
	}
	if *evictVPI < 0 {
		return fail("-evict-vpi %g must be positive (VPI threshold, e.g. 25)", *evictVPI)
	}
	if *hotRounds < 0 {
		return fail("-hot-rounds %d must be positive", *hotRounds)
	}
	if *parallel < 1 {
		return fail("-parallel %d must be at least 1", *parallel)
	}
	switch *lod {
	case "", cluster.LoDFull, cluster.LoDAuto:
	default:
		return fail(`-lod %q must be "full" or "auto"`, *lod)
	}
	if *trafficUsers < 0 {
		return fail("-traffic %d must be positive (modeled users)", *trafficUsers)
	}
	if *stormUsers < 0 {
		return fail("-storm %d must be positive (modeled users)", *stormUsers)
	}
	if *deadlineMs < 0 {
		return fail("-deadline-ms %g must be positive (milliseconds)", *deadlineMs)
	}
	if *retries < 0 {
		return fail("-retries %d must be positive (total attempts, first included)", *retries)
	}
	if *retries > traffic.MaxAttempts {
		return fail("-retries %d exceeds the per-attempt accounting cap of %d", *retries, traffic.MaxAttempts)
	}
	if *retryBudget < 0 && *retryBudget != -1 {
		return fail("-retry-budget %g must not be negative (fraction of recent successes)", *retryBudget)
	}
	if *shedLimit < -1 {
		return fail("-shed-limit %d must not be negative (concurrent requests per replica)", *shedLimit)
	}
	resilienceOverride := *deadlineMs > 0 || *retries > 0 || *retryBudget >= 0 || *shedLimit >= 0
	if *stormUsers > 0 {
		if *chaos || *chaosSpec != "" {
			return fail("-storm scripts its own node crash; drop -chaos/-chaos-spec")
		}
		if *trafficUsers > 0 || *topoPath != "" {
			return fail("-storm brings its own topology; drop -traffic/-topology")
		}
	}
	if *noResilience && resilienceOverride {
		return fail("-no-resilience conflicts with -deadline-ms/-retries/-retry-budget/-shed-limit")
	}
	if (*noResilience || resilienceOverride) && *trafficUsers == 0 && *topoPath == "" && *stormUsers == 0 {
		return fail("resilience flags need a traffic topology: add -traffic, -topology or -storm")
	}

	spec := cluster.DefaultSpec()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return fail("%v", err)
		}
		spec, err = cluster.Load(f)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
	}
	if *nodes > 0 {
		spec.Nodes = *nodes
	}
	if *cores > 0 {
		spec.CoresPerNode = *cores
	}
	if *duration > 0 {
		spec.DurationSeconds = *duration
	}
	if *warmup >= 0 {
		spec.WarmupSeconds = *warmup
	}
	if *batchPods >= 0 {
		spec.Batch.Pods = *batchPods
	}
	if *services > 0 && *services < len(spec.Services) {
		spec.Services = spec.Services[:*services]
	}
	if *evictVPI > 0 {
		spec.EvictVPI = *evictVPI
	}
	if *hotRounds > 0 {
		spec.HotRounds = *hotRounds
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *lod != "" {
		spec.LoD = *lod
	}
	if *chaosSpec != "" {
		f, err := os.Open(*chaosSpec)
		if err != nil {
			return fail("%v", err)
		}
		sched, err := faults.Load(f)
		f.Close()
		if err != nil {
			return fail("-chaos-spec %s: %v", *chaosSpec, err)
		}
		spec.Chaos = &sched
	} else if *chaos {
		sched := faults.DefaultSchedule()
		spec.Chaos = &sched
	}
	if *noDegrade {
		spec.DisableDegradation = true
	}
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		if err != nil {
			return fail("%v", err)
		}
		topo, err := scenario.LoadTopology(f)
		f.Close()
		if err != nil {
			return fail("-topology %s: %v", *topoPath, err)
		}
		spec.Topology = &topo
		spec.Services = nil
	} else if *trafficUsers > 0 {
		// The default diurnal day spans the whole run (warmup + measured
		// window), so the trough, both spikes and the evening decay all
		// land inside the simulation.
		topo := scenario.DefaultTopology(int64(*trafficUsers), spec.WarmupSeconds+spec.DurationSeconds)
		spec.Topology = &topo
		spec.Services = nil
	} else if *stormUsers > 0 {
		// The storm scenario mirrors the registered experiment: resilient
		// client stack by default, and a scripted crash of a replica-hosting
		// node just as the flash crowd ramps in.
		day := spec.WarmupSeconds + spec.DurationSeconds
		topo := scenario.StormTopology(int64(*stormUsers), day, scenario.StormResilience())
		spec.Topology = &topo
		spec.Services = nil
		hbSec := float64(spec.HeartbeatMs) / 1000
		spike := topo.Programs[0].Spikes[0]
		crashRound := int((spike.StartSeconds + 0.05*spike.DurationSeconds) / hbSec)
		downRounds := int(0.4 * spike.DurationSeconds / hbSec)
		if downRounds < 4 {
			downRounds = 4
		}
		var sched faults.Spec
		sched.Nodes.Crashes = []faults.NodeCrash{{Node: 0, Round: crashRound, DownRounds: downRounds}}
		spec.Chaos = &sched
	}
	if spec.Topology != nil && (*noResilience || resilienceOverride) {
		for i := range spec.Topology.Services {
			svc := &spec.Topology.Services[i]
			if *noResilience {
				svc.Resilience = nil
				continue
			}
			var rz scenario.ResilienceSpec
			if svc.Resilience != nil {
				rz = *svc.Resilience
			} else if *deadlineMs <= 0 {
				return fail("service %q has no resilience spec; -deadline-ms is required to add one", svc.Name)
			}
			if *deadlineMs > 0 {
				rz.DeadlineMs = *deadlineMs
			}
			if *retries > 0 {
				rz.MaxAttempts = *retries
			}
			if *retryBudget >= 0 {
				rz.RetryBudget = *retryBudget
			}
			if *shedLimit >= 0 {
				rz.ConcurrencyLimit = *shedLimit
			}
			svc.Resilience = &rz
		}
	}

	opt := cluster.RunOptions{Workers: *parallel}
	placers := []string{spec.Placer}
	switch *placer {
	case "":
	case "both":
		placers = []string{cluster.PlacerVPI, cluster.PlacerBinPack}
	default:
		placers = []string{*placer}
	}
	if len(placers) > 1 && (*traceOut != "" || *flightOut != "") {
		return fail("-trace-out/-flight-out need a single placement policy, not -placer both")
	}
	needObs := *traceOut != "" || *flightOut != "" || *dashboard
	for i, p := range placers {
		spec.Placer = p
		var plane *obs.Plane
		if needObs {
			plane = obs.NewPlane(spec.Nodes, 0)
		}
		opt.Obs = plane
		res, err := cluster.Run(spec, opt)
		if err != nil {
			return fail("%v", err)
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprint(stdout, res.Render())
		if *dashboard {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, report.Dashboard("fleet observability: "+spec.Name, plane))
		}
		if *traceOut != "" {
			spans := plane.MergedSpans()
			if err := writeSpans(*traceOut, spans); err != nil {
				return fail("%v", err)
			}
			fmt.Fprintf(stderr, "trace: %d spans -> %s\n", len(spans), *traceOut)
		}
		if *flightOut != "" {
			bundle := obs.CaptureFlight(plane, "operator request (-flight-out)", 0)
			if err := os.WriteFile(*flightOut, []byte(bundle.Render()), 0o644); err != nil {
				return fail("%v", err)
			}
			fmt.Fprintf(stderr, "flight recorder: %d spans, %d alerts -> %s\n",
				len(bundle.Spans), len(bundle.Alerts), *flightOut)
		}
	}
	return 0
}

// writeSpans exports spans by extension: .jsonl as one span per line,
// anything else as Chrome trace-event JSON (loadable in Perfetto).
func writeSpans(path string, spans []telemetry.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = telemetry.WriteSpansJSONL(f, spans)
	} else {
		err = telemetry.WriteChromeTrace(f, spans)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `holmes-cluster runs a simulated multi-node cluster under the
VPI-aware placement scheduler (internal/cluster).

Flags:
  -spec FILE        JSON cluster spec; flags below override its shape fields
  -nodes N          fleet size (default 6)
  -cores N          physical cores per node (default 8)
  -placer P         "vpi", "binpack", "score" (predicted post-placement
                    interference over the sharded registry), or "both" for a
                    side-by-side vpi/binpack comparison
  -lod M            node fidelity: "full" simulates every node every round;
                    "auto" fast-forwards quiescent nodes (not dead, not
                    suspect, cool VPI trend, nothing placed) and catches them
                    up on demand; auto is ignored under node-fault chaos
  -duration S       measured window in simulated seconds (default 3)
  -warmup S         warmup in simulated seconds (default 1)
  -batch-pods N     total BestEffort pods submitted (default 48)
  -services N       run only the first N services of the spec (0 = all)
  -evict-vpi V      reconciler eviction threshold on the node VPI trend (default 25)
  -hot-rounds N     consecutive hot heartbeats before an eviction (default 2)
  -seed N           simulation seed (default 1)
  -chaos            inject the default deterministic fault schedule
                    (counter faults, cgroup event loss, node crashes)
  -chaos-spec FILE  JSON fault schedule (see internal/faults); overrides -chaos
  -traffic N        attach the default open-loop traffic topology modeling N
                    users: replicated LC services behind a least-queue load
                    balancer, a diurnal arrival curve with two flash-crowd
                    spikes, and a telemetry-driven autoscaler. Replaces the
                    spec's static services; the day spans warmup + duration
  -topology FILE    JSON traffic topology (replicated services + traffic
                    programs, see internal/scenario); overrides -traffic
  -storm N          run the retry-storm scenario modeling N users: a redis
                    frontend under a flash crowd, the resilient client stack
                    (deadlines, budgeted retries, breaker, shedding), and a
                    scripted crash of a replica-hosting node at the spike's
                    onset; conflicts with -chaos/-chaos-spec/-traffic/-topology
  -deadline-ms MS   override every service's per-request deadline; required
                    when adding resilience to services that have none
  -retries N        override total attempts per request (1 = no retries,
                    capped by the per-attempt accounting arrays)
  -retry-budget F   override the retry budget as a fraction of recent
                    successes (0 = unlimited retries)
  -shed-limit N     override the replica admission concurrency limit
                    (0 = no load shedding)
  -no-resilience    strip the resilience layer from every service
  -no-degrade       disable graceful degradation: no daemon watchdog or
                    cgroupfs re-scan, no failure detector or rescheduling
  -parallel N       max concurrent node simulations (default GOMAXPROCS);
                    per-node seeds derive from (seed, node ID), so the
                    output is byte-identical at any parallelism
  -trace-out FILE   write the merged pod-lifecycle + daemon span timeline
                    to FILE (.jsonl = one span per line, otherwise Chrome
                    trace-event JSON loadable in Perfetto / chrome://tracing)
  -flight-out FILE  write the flight-recorder post-mortem bundle (last
                    spans, burn-rate alerts, fleet series) to FILE
  -dashboard        print the fleet observability dashboard (sparkline
                    series, alert log, span totals) after the run
  -no-interval-batch
                    disable the interval-batched loaded simulation path
                    (escape hatch; output is bit-identical either way)
`)
}
