package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/holmes-colocation/holmes/internal/telemetry"
)

// runCLI captures run's exit code and both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative nodes", []string{"-nodes", "-3"}, "-nodes -3 must be positive"},
		{"negative cores", []string{"-cores", "-1"}, "-cores -1 must be positive"},
		{"negative duration", []string{"-duration", "-2"}, "-duration -2 must be positive"},
		{"negative evict-vpi", []string{"-evict-vpi", "-25"}, "-evict-vpi -25 must be positive"},
		{"negative hot-rounds", []string{"-hot-rounds", "-2"}, "-hot-rounds -2 must be positive"},
		{"zero parallel", []string{"-parallel", "0"}, "-parallel 0 must be at least 1"},
		{"bad lod", []string{"-lod", "adaptive"}, `-lod "adaptive" must be "full" or "auto"`},
		{"negative services", []string{"-services", "-1"}, "-services -1 must not be negative"},
		{"missing spec", []string{"-spec", "/does/not/exist.json"}, "no such file"},
		{"missing chaos spec", []string{"-chaos-spec", "/does/not/exist.json"}, "no such file"},
		{"negative storm", []string{"-storm", "-10"}, "-storm -10 must be positive"},
		{"negative deadline", []string{"-deadline-ms", "-5"}, "-deadline-ms -5 must be positive"},
		{"negative retries", []string{"-retries", "-2"}, "-retries -2 must be positive"},
		{"retries over cap", []string{"-retries", "99"}, "exceeds the per-attempt accounting cap"},
		{"negative retry budget", []string{"-retry-budget", "-0.5"}, "-retry-budget -0.5 must not be negative"},
		{"negative shed limit", []string{"-shed-limit", "-3"}, "-shed-limit -3 must not be negative"},
		{"storm with chaos", []string{"-storm", "1000", "-chaos"}, "scripts its own node crash"},
		{"storm with chaos spec", []string{"-storm", "1000", "-chaos-spec", "x.json"}, "scripts its own node crash"},
		{"storm with traffic", []string{"-storm", "1000", "-traffic", "1000"}, "brings its own topology"},
		{"storm with topology", []string{"-storm", "1000", "-topology", "x.json"}, "brings its own topology"},
		{"no-resilience vs overrides", []string{"-traffic", "1000", "-no-resilience", "-retries", "2"},
			"-no-resilience conflicts with"},
		{"resilience without topology", []string{"-deadline-ms", "50"},
			"resilience flags need a traffic topology"},
		{"no-resilience without topology", []string{"-no-resilience"},
			"resilience flags need a traffic topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code == 0 {
				t.Fatalf("run(%v) accepted invalid flags", tc.args)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.want)
			}
		})
	}
}

func TestUnknownFlagFails(t *testing.T) {
	code, _, stderr := runCLI("-scheduler", "vpi")
	if code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "scheduler") {
		t.Fatalf("stderr %q does not name the bad flag", stderr)
	}
}

func TestBadChaosSpecJSONFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, []byte(`{"counters": {"drop_rate": 2.0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI("-chaos-spec", path)
	if code == 0 {
		t.Fatal("run accepted an out-of-range fault schedule")
	}
	if !strings.Contains(stderr, "drop_rate") {
		t.Fatalf("stderr %q does not explain the bad field", stderr)
	}
}

// smallArgs keeps CLI runs fast: 3 nodes, 2 services, short windows.
func smallArgs(extra ...string) []string {
	return append([]string{
		"-nodes", "3", "-services", "2", "-batch-pods", "6",
		"-warmup", "0.2", "-duration", "0.6", "-parallel", "4",
	}, extra...)
}

func TestRunCleanCluster(t *testing.T) {
	code, stdout, stderr := runCLI(smallArgs()...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"vpi placement", "cluster utilization"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "chaos:") {
		t.Fatalf("fault-free run printed chaos stats:\n%s", stdout)
	}
}

func TestRunChaosFlag(t *testing.T) {
	code, stdout, stderr := runCLI(smallArgs("-chaos")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"chaos:", "recovery:"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, stdout)
		}
	}
}

func TestChaosSpecFileAndNoDegrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	sched := `{"nodes": {"heartbeat_loss_rate": 0.1}}`
	if err := os.WriteFile(path, []byte(sched), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(smallArgs("-chaos-spec", path, "-no-degrade")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "heartbeats lost") {
		t.Fatalf("chaos-spec run shows no heartbeat loss:\n%s", stdout)
	}
	if !strings.Contains(stdout, "safe-mode entries 0") {
		t.Fatalf("-no-degrade run still reports safe-mode entries:\n%s", stdout)
	}
}

// TestScorePlacerAndLoDFlags runs a wider fleet under the scoring placer
// with LoD auto and checks the fidelity line reports fast-forwarded
// node-rounds, plus byte-identical output across -parallel values.
func TestScorePlacerAndLoDFlags(t *testing.T) {
	args := []string{"-nodes", "12", "-services", "2", "-batch-pods", "8",
		"-warmup", "0.2", "-duration", "0.6", "-placer", "score", "-lod", "auto"}
	code, stdout, stderr := runCLI(append(args, "-parallel", "8")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"score placement", "fidelity: lod=auto", "cluster utilization"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("output missing %q:\n%s", want, stdout)
		}
	}
	_, serial, _ := runCLI(append(args, "-parallel", "1")...)
	if serial != stdout {
		t.Fatalf("-lod auto output differs between -parallel 8 and 1:\n--- p8 ---\n%s\n--- p1 ---\n%s",
			stdout, serial)
	}
}

func TestDeterministicAcrossParallel(t *testing.T) {
	_, serial, _ := runCLI(smallArgs("-chaos", "-parallel", "1")...)
	_, par, _ := runCLI(smallArgs("-chaos", "-parallel", "8")...)
	if serial != par {
		t.Fatalf("output differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, par)
	}
}

func TestTraceOutIncompatibleWithBothPlacers(t *testing.T) {
	code, _, stderr := runCLI(smallArgs("-placer", "both", "-trace-out", "t.json")...)
	if code == 0 {
		t.Fatal("run accepted -placer both with -trace-out")
	}
	if !strings.Contains(stderr, "single placement policy") {
		t.Fatalf("stderr %q does not explain the conflict", stderr)
	}
}

func TestObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	flight := filepath.Join(dir, "flight.txt")
	code, stdout, stderr := runCLI(smallArgs(
		"-trace-out", trace, "-flight-out", flight, "-dashboard")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"fleet observability: cluster", "fleet/mean_vpi",
		"span timeline:", "burn-rate alerts"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatalf("-trace-out file fails schema check: %v", err)
	}
	bundle, err := os.ReadFile(flight)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"==== FLIGHT RECORDER ====", "operator request",
		"==== END FLIGHT RECORDER ===="} {
		if !strings.Contains(string(bundle), want) {
			t.Fatalf("-flight-out bundle missing %q:\n%s", want, bundle)
		}
	}
	if !strings.Contains(stderr, "trace:") || !strings.Contains(stderr, "flight recorder:") {
		t.Fatalf("stderr missing output notices: %q", stderr)
	}
}

// TestTracingDoesNotChangeReport pins the CLI-level determinism contract:
// the rendered report is byte-identical with and without the tracing and
// dashboard flags (only the extra dashboard block differs).
func TestTracingDoesNotChangeReport(t *testing.T) {
	_, plain, _ := runCLI(smallArgs()...)
	trace := filepath.Join(t.TempDir(), "trace.json")
	code, traced, stderr := runCLI(smallArgs("-trace-out", trace)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if plain != traced {
		t.Fatalf("tracing changed the report:\n--- off ---\n%s\n--- on ---\n%s", plain, traced)
	}
}

func TestTrafficFlag(t *testing.T) {
	code, stdout, stderr := runCLI("-nodes", "4", "-traffic", "60000",
		"-warmup", "0.5", "-duration", "2", "-batch-pods", "0", "-dashboard")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"traffic plane: replicated services under open-loop load",
		"request accounting",
		"conserved",
		"-- autoscaler --",
		"frontend replicas",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("traffic run missing %q:\n%s", want, stdout)
		}
	}
}

func TestTrafficFlagRejectsNegative(t *testing.T) {
	code, _, stderr := runCLI("-traffic", "-5")
	if code == 0 || !strings.Contains(stderr, "-traffic -5 must be positive") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestStormFlag(t *testing.T) {
	code, stdout, stderr := runCLI("-nodes", "5", "-storm", "40000",
		"-warmup", "0.5", "-duration", "2", "-batch-pods", "0", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"frontend", "storm",
		"request-path resilience: deadlines, retries, breakers, shedding",
		"request accounting",
		"conserved",
		"chaos: 1 crashes",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("storm run missing %q:\n%s", want, stdout)
		}
	}
}

func TestResilienceOverridesOnTraffic(t *testing.T) {
	// DefaultTopology ships without a resilience layer, so overrides must
	// insist on a deadline to build one from.
	args := []string{"-nodes", "3", "-traffic", "30000",
		"-warmup", "0.3", "-duration", "1", "-batch-pods", "0", "-parallel", "4"}
	code, _, stderr := runCLI(append(args, "-retries", "2")...)
	if code == 0 || !strings.Contains(stderr, "-deadline-ms is required") {
		t.Fatalf("override without deadline accepted: exit %d, stderr %q", code, stderr)
	}

	code, stdout, stderr := runCLI(append(args, "-deadline-ms", "50", "-retries", "2",
		"-retry-budget", "0.2", "-shed-limit", "64")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "request-path resilience") {
		t.Fatalf("override run renders no resilience table:\n%s", stdout)
	}

	// -no-resilience on a topology that has a layer strips it.
	code, stdout, stderr = runCLI("-nodes", "3", "-storm", "20000",
		"-warmup", "0.3", "-duration", "1", "-batch-pods", "0", "-parallel", "4",
		"-no-resilience")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "request-path resilience") {
		t.Fatalf("-no-resilience run still renders the resilience table:\n%s", stdout)
	}
}

func TestTopologyFileFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	doc := `{
		"services": [{
			"name": "api", "store": "memcached", "program": "day",
			"replicas": 2, "queue_cap": 128
		}],
		"programs": [{
			"name": "day", "users": 50000,
			"base_rps": 300, "peak_rps": 1500, "day_seconds": 2
		}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI("-nodes", "3", "-topology", path,
		"-warmup", "0.3", "-duration", "1.7", "-batch-pods", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "api") || !strings.Contains(stdout, "conserved") {
		t.Fatalf("topology run missing service accounting:\n%s", stdout)
	}

	// A topology that fails validation is rejected with the field named.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"services": [], "programs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI("-topology", bad)
	if code == 0 || !strings.Contains(stderr, "at least one replicated service") {
		t.Fatalf("bad topology accepted: exit %d, stderr %q", code, stderr)
	}
}
