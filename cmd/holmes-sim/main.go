// Command holmes-sim runs a declarative co-location scenario from a JSON
// file (or stdin with "-") and prints the per-service latency report.
//
//	holmes-sim scenario.json
//	holmes-sim -example > my.json && holmes-sim my.json
//
// Scenarios describe the machine, one or more latency-critical services
// with their YCSB workloads and traffic shapes, a batch job stream, and
// the scheduling policy (holmes, perfiso, none). See internal/scenario
// for the full schema.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/holmes-colocation/holmes/internal/scenario"
)

const exampleScenario = `{
  "name": "two-tenant server",
  "machine": {"cores": 16},
  "scheduler": "holmes",
  "holmes": {"e": 40, "interval_us": 100, "reserved_cpus": 4},
  "services": [
    {"store": "redis", "workload": "a", "rps": 10000,
     "burst_seconds": [6, 9], "gap_seconds": [0.5, 1]},
    {"store": "rocksdb", "workload": "b", "rps": 20000}
  ],
  "batch": {"continuous": true, "concurrent_jobs": 3,
            "kinds": ["kmeans", "sort", "pagerank"]},
  "warmup_seconds": 2,
  "duration_seconds": 15,
  "seed": 1
}
`

func main() {
	example := flag.Bool("example", false, "print an example scenario and exit")
	flag.Parse()

	if *example {
		fmt.Print(exampleScenario)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: holmes-sim [-example] <scenario.json | ->")
		os.Exit(2)
	}

	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	spec, err := scenario.Load(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("running scenario %q...\n\n", spec.Name)
	rep, err := scenario.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
}
