// Command holmes-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	holmes-bench list
//	holmes-bench [-full] [-seed N] <experiment-id>...
//	holmes-bench [-full] [-seed N] all
//
// Experiment ids follow the paper: fig2, fig3, table1, fig4, fig5,
// fig7..fig14, table3, table4, overhead — plus extensions: ablations,
// cluster (multi-node placement) and chaos (deterministic fault
// injection with and without graceful degradation). The default profile
// runs time-compressed windows that finish in seconds to minutes; -full
// uses the paper-faithful windows. -parallel N fans independent simulation
// runs across N workers; every run derives its seed from (seed, run key),
// so the output is byte-identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/perfbench"
	"github.com/holmes-colocation/holmes/internal/runner"
	"github.com/holmes-colocation/holmes/internal/telemetry"
)

func main() {
	full := flag.Bool("full", false, "run paper-faithful (longer) measurement windows")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runner.DefaultParallelism(),
		"max concurrent simulation runs (1 = serial; output identical either way)")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	telemetryOut := flag.String("telemetry-out", "", "stream scheduler decision events to this JSONL file")
	perfMode := flag.Bool("perf", false, "benchmark the tick engine and write BENCH_tick.json")
	perfOut := flag.String("perf-out", "BENCH_tick.json", "output path for -perf")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if *perfMode {
		if err := runPerf(*perfOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	save := func(id, out string) {
		if *outDir == "" {
			return
		}
		path := filepath.Join(*outDir, id+".txt")
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "warning:", err)
		}
	}

	opts := experiments.Options{Full: *full, Seed: *seed, Parallel: *parallel}
	var jsonl *telemetry.JSONLSink
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			f.Close()
			fmt.Fprintf(os.Stderr, "telemetry: %d events -> %s\n", jsonl.Count(), *telemetryOut)
		}()
		set := telemetry.NewSet()
		jsonl = telemetry.NewJSONLSink(f)
		set.Tracer.AddSink(jsonl)
		opts.Telemetry = set
	}
	reg := experiments.Registry()

	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-10s %s\n", id, reg[id].Title)
		}
		return
	}
	if args[0] == "report" {
		path := "holmes-report.html"
		if *outDir != "" {
			path = filepath.Join(*outDir, "holmes-report.html")
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := experiments.WriteHTMLReport(f, opts); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("wrote", path)
		return
	}

	ids := args
	if args[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try 'holmes-bench list'\n", id)
			os.Exit(2)
		}
	}
	// RunIDs executes up to -parallel experiments concurrently and returns
	// outputs aligned with ids, so printing stays in request order.
	outs, err := experiments.RunIDs(opts, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, id := range ids {
		fmt.Printf("############ %s: %s ############\n%s\n", id, reg[id].Title, outs[i])
		save(id, outs[i])
	}
}

// runPerf measures the tick-engine scenarios and writes the JSON report,
// printing the human-readable block to stdout.
func runPerf(path string, seed uint64) error {
	opts := perfbench.Quick()
	opts.Seed = seed
	rep, err := perfbench.Collect(opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `holmes-bench regenerates the tables and figures of
"Holmes: SMT Interference Diagnosis and CPU Scheduling for Job Co-location" (HPDC'22).

Usage:
  holmes-bench list                     show available experiments
  holmes-bench [flags] <id>...          run specific experiments
  holmes-bench [flags] all              run everything in paper order
  holmes-bench [flags] report           write an HTML report with SVG figures

Beyond the paper's figures, "cluster" compares multi-node placement
policies and "chaos" runs the deterministic fault-injection experiment
(fault-free vs faults-with-degradation vs faults-without).

Flags:
  -full                paper-faithful measurement windows (minutes of simulated time)
  -seed N              simulation seed (default 1)
  -parallel N          max concurrent simulation runs (default GOMAXPROCS);
                       every run's seed derives from (seed, run key), so
                       output is byte-identical at any parallelism
  -o DIR               also write each experiment's output to DIR/<id>.txt
  -telemetry-out FILE  stream scheduler decision events (JSONL) to FILE
  -perf                benchmark the tick engine instead of running experiments
  -perf-out FILE       where -perf writes its JSON report (default BENCH_tick.json)
`)
}
