// Command holmes-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	holmes-bench list
//	holmes-bench [-full] [-seed N] <experiment-id>...
//	holmes-bench [-full] [-seed N] all
//
// Experiment ids follow the paper: fig2, fig3, table1, fig4, fig5,
// fig7..fig14, table3, table4, overhead — plus extensions: ablations,
// cluster (multi-node placement) and chaos (deterministic fault
// injection with and without graceful degradation). The default profile
// runs time-compressed windows that finish in seconds to minutes; -full
// uses the paper-faithful windows. -parallel N fans independent simulation
// runs across N workers; every run derives its seed from (seed, run key),
// so the output is byte-identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/holmes-colocation/holmes/internal/experiments"
	"github.com/holmes-colocation/holmes/internal/machine"
	"github.com/holmes-colocation/holmes/internal/perfbench"
	"github.com/holmes-colocation/holmes/internal/runner"
	"github.com/holmes-colocation/holmes/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("holmes-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run paper-faithful (longer) measurement windows")
	seed := fs.Uint64("seed", 1, "simulation seed")
	parallel := fs.Int("parallel", runner.DefaultParallelism(),
		"max concurrent simulation runs (1 = serial; output identical either way)")
	outDir := fs.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	telemetryOut := fs.String("telemetry-out", "", "stream scheduler decision events to this JSONL file")
	traceOut := fs.String("trace-out", "", "write recorded daemon spans to this file (.jsonl = one span per line, otherwise Chrome trace-event JSON)")
	perfMode := fs.Bool("perf", false, "benchmark the tick engine and write BENCH_tick.json")
	perfOut := fs.String("perf-out", "BENCH_tick.json", "output path for -perf")
	noBatch := fs.Bool("no-interval-batch", false,
		"disable the interval-batched loaded path (escape hatch; output is bit-identical either way)")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *noBatch {
		machine.SetDefaultIntervalBatching(false)
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "holmes-bench: "+format+"\n", a...)
		return 1
	}
	if *parallel < 1 {
		return fail("-parallel %d must be at least 1", *parallel)
	}
	if *perfMode {
		// The perf scenarios time the bare tick engine; attaching the
		// observability sinks would measure the recorder, not the engine.
		if *telemetryOut != "" {
			return fail("-perf is incompatible with -telemetry-out (the benchmark measures the bare tick engine)")
		}
		if *traceOut != "" {
			return fail("-perf is incompatible with -trace-out (the benchmark measures the bare tick engine)")
		}
		if err := runPerf(stdout, *perfOut, *seed); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage(stderr)
		return 2
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fail("%v", err)
		}
	}
	save := func(id, out string) {
		if *outDir == "" {
			return
		}
		path := filepath.Join(*outDir, id+".txt")
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fmt.Fprintln(stderr, "warning:", err)
		}
	}

	opts := experiments.Options{Full: *full, Seed: *seed, Parallel: *parallel}
	var set *telemetry.Set
	if *telemetryOut != "" || *traceOut != "" {
		set = telemetry.NewSet()
		opts.Telemetry = set
	}
	var jsonl *telemetry.JSONLSink
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			return fail("%v", err)
		}
		defer func() {
			f.Close()
			fmt.Fprintf(stderr, "telemetry: %d events -> %s\n", jsonl.Count(), *telemetryOut)
		}()
		jsonl = telemetry.NewJSONLSink(f)
		set.Tracer.AddSink(jsonl)
	}
	reg := experiments.Registry()

	if rest[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-10s %s\n", id, reg[id].Title)
		}
		return 0
	}
	if rest[0] == "report" {
		path := "holmes-report.html"
		if *outDir != "" {
			path = filepath.Join(*outDir, "holmes-report.html")
		}
		f, err := os.Create(path)
		if err != nil {
			return fail("%v", err)
		}
		if err := experiments.WriteHTMLReport(f, opts); err != nil {
			f.Close()
			return fail("%v", err)
		}
		f.Close()
		fmt.Fprintln(stdout, "wrote", path)
		return 0
	}

	ids := rest
	if rest[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; try 'holmes-bench list'\n", id)
			return 2
		}
	}
	// RunIDs executes up to -parallel experiments concurrently and returns
	// outputs aligned with ids, so printing stays in request order.
	outs, err := experiments.RunIDs(opts, ids)
	if err != nil {
		return fail("%v", err)
	}
	for i, id := range ids {
		fmt.Fprintf(stdout, "############ %s: %s ############\n%s\n", id, reg[id].Title, outs[i])
		save(id, outs[i])
	}
	if *traceOut != "" {
		spans := set.Spans.Snapshot()
		if err := writeSpans(*traceOut, spans); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stderr, "trace: %d spans -> %s\n", len(spans), *traceOut)
	}
	return 0
}

// writeSpans exports spans by extension: .jsonl as one span per line,
// anything else as Chrome trace-event JSON (loadable in Perfetto).
func writeSpans(path string, spans []telemetry.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = telemetry.WriteSpansJSONL(f, spans)
	} else {
		err = telemetry.WriteChromeTrace(f, spans)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runPerf measures the tick-engine scenarios and writes the JSON report,
// printing the human-readable block to stdout.
func runPerf(stdout io.Writer, path string, seed uint64) error {
	opts := perfbench.Quick()
	opts.Seed = seed
	rep, err := perfbench.Collect(opts)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Render())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote", path)
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `holmes-bench regenerates the tables and figures of
"Holmes: SMT Interference Diagnosis and CPU Scheduling for Job Co-location" (HPDC'22).

Usage:
  holmes-bench list                     show available experiments
  holmes-bench [flags] <id>...          run specific experiments
  holmes-bench [flags] all              run everything in paper order
  holmes-bench [flags] report           write an HTML report with SVG figures

Beyond the paper's figures, "cluster" compares multi-node placement
policies and "chaos" runs the deterministic fault-injection experiment
(fault-free vs faults-with-degradation vs faults-without).

Flags:
  -full                paper-faithful measurement windows (minutes of simulated time)
  -seed N              simulation seed (default 1)
  -parallel N          max concurrent simulation runs (default GOMAXPROCS);
                       every run's seed derives from (seed, run key), so
                       output is byte-identical at any parallelism
  -o DIR               also write each experiment's output to DIR/<id>.txt
  -telemetry-out FILE  stream scheduler decision events (JSONL) to FILE
  -trace-out FILE      write recorded daemon spans to FILE (.jsonl = one
                       span per line, otherwise Chrome trace-event JSON
                       loadable in Perfetto / chrome://tracing)
  -perf                benchmark the tick engine instead of running experiments
  -perf-out FILE       where -perf writes its JSON report (default BENCH_tick.json)
  -no-interval-batch   disable the interval-batched loaded simulation path
                       (escape hatch; output is bit-identical either way)
`)
}
