package main

import (
	"strings"
	"testing"
)

// runCLI captures run's exit code and both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestPerfIncompatibleWithObservabilityOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"telemetry-out", []string{"-perf", "-telemetry-out", "events.jsonl"},
			"-perf is incompatible with -telemetry-out"},
		{"trace-out", []string{"-perf", "-trace-out", "trace.json"},
			"-perf is incompatible with -trace-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code == 0 {
				t.Fatalf("run(%v) accepted incompatible flags", tc.args)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.want)
			}
		})
	}
}

func TestZeroParallelFails(t *testing.T) {
	code, _, stderr := runCLI("-parallel", "0", "fig3")
	if code == 0 {
		t.Fatal("run accepted -parallel 0")
	}
	if !strings.Contains(stderr, "-parallel 0 must be at least 1") {
		t.Fatalf("stderr %q does not explain the bad flag", stderr)
	}
}

func TestUnknownFlagFails(t *testing.T) {
	code, _, stderr := runCLI("-figures", "3")
	if code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "figures") {
		t.Fatalf("stderr %q does not name the bad flag", stderr)
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, _, stderr := runCLI()
	if code != 2 {
		t.Fatalf("no-args run exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "holmes-bench regenerates") {
		t.Fatalf("stderr is not the usage text: %q", stderr)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	code, _, stderr := runCLI("fig99")
	if code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown experiment "fig99"`) {
		t.Fatalf("stderr %q does not name the experiment", stderr)
	}
}

func TestListExperiments(t *testing.T) {
	code, stdout, stderr := runCLI("list")
	if code != 0 {
		t.Fatalf("list exited %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"fig3", "chaos", "cluster"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("list output missing %q:\n%s", want, stdout)
		}
	}
}
