GO ?= go

.PHONY: all build check batch-equiv cluster-smoke chaos-smoke traffic-smoke storm-smoke scale-smoke fuzz-smoke bench-smoke obs-smoke test test-short vet bench bench-experiments report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast correctness gate: vet everything, race-test the telemetry record
# path, the daemon that drives it, the worker pool, and the concurrent
# experiment engine (heavy serial simulations skip themselves under
# -race; the engine's concurrency tests still run).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/telemetry/... ./internal/core/... ./internal/runner/... ./internal/experiments/... ./internal/cluster/... ./internal/faults/...

# Interval-batching equivalence gate: the per-scenario differential
# suite (internal/machine/equiv) plus the registry-wide test over every
# experiment (HOLMES_EQUIV_FULL=1), under -race. Any batching on/off or
# parallelism divergence fails; the mismatched renderings land in
# equiv-diff/ for CI to upload as an artifact.
batch-equiv:
	$(GO) test -race -count=1 ./internal/machine/equiv
	HOLMES_EQUIV_FULL=1 HOLMES_EQUIV_DIFF_DIR=equiv-diff \
		$(GO) test -race -count=1 -timeout 50m -run TestRegistryBatchingEquivalence ./internal/experiments

# Tiny end-to-end cluster run: two nodes, two services, a short window,
# both placement policies. Exercises boot -> placement -> heartbeats ->
# reap -> render without the full default fleet.
cluster-smoke:
	$(GO) run ./cmd/holmes-cluster -nodes 2 -cores 4 -services 2 \
		-warmup 0.2 -duration 0.5 -batch-pods 4 -placer both

# Tiny chaos run: the same small fleet under the default deterministic
# fault schedule, once with graceful degradation and once without, so CI
# exercises watchdog/safe-mode, the failure detector and rescheduling.
chaos-smoke:
	$(GO) run ./cmd/holmes-cluster -nodes 3 -cores 4 -services 2 \
		-warmup 0.2 -duration 1.0 -batch-pods 6 -chaos
	$(GO) run ./cmd/holmes-cluster -nodes 3 -cores 4 -services 2 \
		-warmup 0.2 -duration 1.0 -batch-pods 6 -chaos -no-degrade

# Compressed-day traffic run: a small fleet driving the default diurnal
# topology (replicated services, least-queue balancer, autoscaler) with a
# BestEffort backfill stream, rendered with the fleet dashboard into
# traffic-out/report.txt. CI uploads the directory as an artifact so every
# commit carries a readable traffic-plane report (request accounting,
# spike/trough SLO split, autoscaler sparklines).
traffic-smoke:
	mkdir -p traffic-out
	$(GO) run ./cmd/holmes-cluster -nodes 4 -cores 4 -traffic 120000 \
		-warmup 0.5 -duration 3.5 -batch-pods 12 -dashboard \
		> traffic-out/report.txt
	grep -q "request accounting" traffic-out/report.txt
	grep -q "conserved" traffic-out/report.txt
	@echo "traffic-smoke artifact in traffic-out/: report.txt"

# Full retry-storm chaos experiment: flash crowd + scripted node crash,
# three client-stack arms (naive retries / budgeted+breaker+shedding /
# no-retry control), rendered with its PASS/FAIL verdict into
# storm-out/report.txt. The grep gates CI on the verdict line itself; on
# FAIL the report embeds the flight-recorder bundle, and CI uploads the
# directory either way.
storm-smoke:
	mkdir -p storm-out
	$(GO) run ./cmd/holmes-bench storm > storm-out/report.txt
	grep -q "storm verdict" storm-out/report.txt
	grep -q "storm verdict.*PASS" storm-out/report.txt
	@echo "storm-smoke artifact in storm-out/: report.txt"

# Datacenter-scale placement experiment: a 256-node fleet on the sharded
# registry with LoD auto, three placement arms (scoring / vpi / binpack)
# over identical workloads, rendered with its PASS/FAIL verdict into
# scale-out/report.txt. The greps gate CI on the verdict line itself and
# on the pod-stream conservation identity holding in all three arms.
scale-smoke:
	mkdir -p scale-out
	$(GO) run ./cmd/holmes-bench scale > scale-out/report.txt
	grep -q "scale verdict" scale-out/report.txt
	grep -q "scale verdict.*PASS" scale-out/report.txt
	test "$$(grep -c ": conserved" scale-out/report.txt)" -eq 3
	@echo "scale-smoke artifact in scale-out/: report.txt"

# Short fuzz smoke: a few seconds per fuzz target over the codec and
# generator corpora. CI runs this; `go test` alone only replays seeds.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzRecordRoundTrip -fuzztime=10s ./internal/kvstore
	$(GO) test -run=^$$ -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/kvstore
	$(GO) test -run=^$$ -fuzz=FuzzZipf -fuzztime=10s ./internal/rng
	$(GO) test -run=^$$ -fuzz=FuzzScrambledZipf -fuzztime=10s ./internal/rng
	$(GO) test -run=^$$ -fuzz=FuzzChaosSpec -fuzztime=10s ./internal/faults
	$(GO) test -run=^$$ -fuzz=FuzzIntervalEquivalence -fuzztime=15s ./internal/machine/equiv

# Tick-engine performance trajectory: runs the perfbench scenarios and
# regenerates BENCH_tick.json (machine ticks/sec, ns/tick, allocs/tick,
# end-to-end experiment wall time). CI uploads the file as an artifact so
# every commit carries its measured numbers.
bench-smoke:
	$(GO) run ./cmd/holmes-bench -perf -perf-out BENCH_tick.json

# Observability smoke: the Chrome-trace schema check and golden span-tree
# test, then a small traced cluster run that exports the span timeline,
# the flight-recorder bundle and the text dashboard into obs-out/. CI
# uploads the directory as an artifact, so every commit carries an openable
# trace (Perfetto / chrome://tracing) and a readable post-mortem bundle.
obs-smoke:
	$(GO) test -run 'TestGoldenEvictionSpanChain|TestObsChromeTraceValid|TestObsDeterministicAcrossWorkers' ./internal/cluster/
	$(GO) test -run 'TestChromeTrace|TestWriteSpansJSONL' ./internal/telemetry/
	mkdir -p obs-out
	$(GO) run ./cmd/holmes-cluster -nodes 3 -cores 4 -services 2 \
		-warmup 0.2 -duration 1.0 -batch-pods 6 -chaos -dashboard \
		-trace-out obs-out/trace.json -flight-out obs-out/flight.txt \
		> obs-out/dashboard.txt
	@echo "obs-smoke artifacts in obs-out/: trace.json flight.txt dashboard.txt"

test: check
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Every paper table/figure as a benchmark, plus the store micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Only the paper-experiment benchmarks at the repository root.
bench-experiments:
	$(GO) test -bench=. -benchmem .

# Regenerate the whole evaluation as text and as an HTML report.
evaluation:
	$(GO) run ./cmd/holmes-bench -o out all
	$(GO) run ./cmd/holmes-bench -o out report

report:
	$(GO) run ./cmd/holmes-bench report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/diagnosis
	$(GO) run ./examples/colocation
	$(GO) run ./examples/tuning
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/kubernetes

clean:
	rm -rf out obs-out traffic-out storm-out scale-out equiv-diff holmes-report.html test_output.txt bench_output.txt
